package dsp

import (
	"fmt"
	"math"
	"testing"
)

// batchFrames synthesizes k deterministic, mutually distinct frames of
// length n — each lane gets its own tone mix and phase so a lane mixup
// in the batch kernels cannot cancel out.
func batchFrames(n, k int) [][]float64 {
	frames := make([][]float64, k)
	for l := range frames {
		f := make([]float64, n)
		base := 18000 + 137*float64(l)
		phase := 0.31 * float64(l)
		for i := range f {
			t := float64(i) / 44100
			f[i] = math.Sin(2*math.Pi*base*t+phase) +
				0.4*math.Sin(2*math.Pi*(base-220)*t) +
				0.03*math.Sin(2*math.Pi*(350+11*float64(l))*t)
		}
		frames[l] = f
	}
	return frames
}

// refBandMagnitudes computes the per-frame reference column exactly as
// rfftBand does: fused windowed pack, the per-frame DIF network, and
// sqrt(re²+im²) per band bin.
func refBandMagnitudes(t *testing.T, frame, win []float64, low, high int) []float64 {
	t.Helper()
	plan, err := NewRFFTPlan(len(frame))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.transformHalf(frame, win); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, high-low)
	for i := range dst {
		x := plan.unpackBin(low + i)
		dst[i] = math.Sqrt(real(x)*real(x) + imag(x)*imag(x))
	}
	return dst
}

// TestBatchPlanMatchesPerFrame pins the tentpole bit-identity claim at
// the plan level: for every transform shape class (fused span-16/4
// tail, trailing radix-2 tail, single-stage, and the degenerate tiny
// sizes), batched columns must equal the per-frame RFFTPlan path bit
// for bit, on every kernel tier the host can run.
func TestBatchPlanMatchesPerFrame(t *testing.T) {
	const lanes = 5
	for _, n := range []int{2, 4, 8, 16, 32, 128, 512, 4096, 8192} {
		for _, windowed := range []bool{false, true} {
			t.Run(fmt.Sprintf("n%d_win%v", n, windowed), func(t *testing.T) {
				frames := batchFrames(n, lanes)
				var win []float64
				if windowed {
					w, err := NewWindow(WindowHanning, n)
					if err != nil {
						t.Fatal(err)
					}
					win = w.coeffs
				}
				m := n / 2
				low, high := 0, m
				if m > 8 {
					low, high = m/4, m-3 // off-center crop exercises rev lookups
				}
				want := make([][]float64, lanes)
				for l := range frames {
					want[l] = refBandMagnitudes(t, frames[l], win, low, high)
				}
				p, err := NewBatchPlan(n, lanes)
				if err != nil {
					t.Fatal(err)
				}
				tiers := []struct {
					name        string
					vec512, vec bool
				}{
					{"host", p.vec512, p.vec},
					{"avx", false, p.vec},
					{"scalar", false, false},
				}
				dsts := make([][]float64, lanes)
				for l := range dsts {
					dsts[l] = make([]float64, high-low)
				}
				for _, tier := range tiers {
					p.vec512, p.vec = tier.vec512, tier.vec
					if err := p.Columns(frames, win, low, high, dsts); err != nil {
						t.Fatalf("tier %s: %v", tier.name, err)
					}
					for l := range dsts {
						for i, got := range dsts[l] {
							if got != want[l][i] {
								t.Fatalf("tier %s lane %d bin %d: got %v want %v",
									tier.name, l, low+i, got, want[l][i])
							}
						}
					}
				}
			})
		}
	}
}

// TestBatchPlanRaggedAndRepeated checks that a plan survives ragged
// reuse: successive calls with different lane counts (including the
// empty batch) never bleed state between lanes or calls.
func TestBatchPlanRaggedAndRepeated(t *testing.T) {
	const n, lanes = 1024, 16
	p, err := NewBatchPlan(n, lanes)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindow(WindowHamming, n)
	if err != nil {
		t.Fatal(err)
	}
	frames := batchFrames(n, lanes)
	low, high := 100, 300
	for _, k := range []int{lanes, 1, 7, 0, 16, 3} {
		dsts := make([][]float64, k)
		for l := range dsts {
			dsts[l] = make([]float64, high-low)
		}
		if err := p.Columns(frames[:k], w.coeffs, low, high, dsts); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for l := 0; l < k; l++ {
			want := refBandMagnitudes(t, frames[l], w.coeffs, low, high)
			for i, got := range dsts[l] {
				if got != want[i] {
					t.Fatalf("k=%d lane %d bin %d: got %v want %v", k, l, i, got, want[i])
				}
			}
		}
	}
}

// TestBatchSTFTMatchesSTFT is the differential harness of the tentpole:
// for every engine kind and a spread of window kinds and batch sizes,
// BatchSTFT.Columns must be bit-identical to FrameColumn on a
// per-session STFT with the same config — including the configs that
// fall back to the per-frame loop.
func TestBatchSTFTMatchesSTFT(t *testing.T) {
	def := DefaultSTFTConfig()
	cases := []struct {
		name    string
		cfg     STFTConfig
		batched bool
	}{
		{"auto_band_default", def, true},
		{"auto_band_hamming", STFTConfig{SampleRate: 44100, FFTSize: 2048, HopSize: 256,
			Window: WindowHamming, LowBin: 400, HighBin: 700}, true},
		{"auto_goertzel_narrow", STFTConfig{SampleRate: 44100, FFTSize: 1024, HopSize: 256,
			Window: WindowBlackman, LowBin: 10, HighBin: 28}, false},
		{"rfft_explicit", STFTConfig{SampleRate: 44100, FFTSize: 2048, HopSize: 256,
			Window: WindowRectangular, LowBin: 100, HighBin: 300, Engine: EngineRFFT}, true},
		{"goertzel_forced", STFTConfig{SampleRate: 44100, FFTSize: 1024, HopSize: 256,
			Window: WindowHanning, LowBin: 50, HighBin: 60, Engine: EngineGoertzel}, false},
		{"fullfft", STFTConfig{SampleRate: 44100, FFTSize: 1024, HopSize: 256,
			Window: WindowHanning, LowBin: 0, HighBin: 512, Engine: EngineFFT}, false},
	}
	const maxLanes = 16
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bs, err := NewBatchSTFT(tc.cfg, maxLanes)
			if err != nil {
				t.Fatal(err)
			}
			if bs.Batched() != tc.batched {
				t.Fatalf("Batched() = %v, want %v", bs.Batched(), tc.batched)
			}
			ref, err := NewSTFT(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			frames := batchFrames(bs.Config().FFTSize, maxLanes)
			for _, k := range []int{1, 5, maxLanes} {
				dsts := make([][]float64, k)
				for l := range dsts {
					dsts[l] = make([]float64, bs.Bins())
				}
				if err := bs.Columns(frames[:k], dsts); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				for l := 0; l < k; l++ {
					want, err := ref.FrameColumn(frames[l])
					if err != nil {
						t.Fatal(err)
					}
					for i, got := range dsts[l] {
						if got != want[i] {
							t.Fatalf("k=%d lane %d bin %d: got %v want %v", k, l, i, got, want[i])
						}
					}
				}
			}
		})
	}
}

// TestBatchColumnsAllocFree pins the hot-loop allocation contract the
// bench gate enforces: a Columns call on preallocated dsts performs no
// allocation, on both the batched and the fallback path.
func TestBatchColumnsAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  STFTConfig
	}{
		{"batched", DefaultSTFTConfig()},
		{"fallback", STFTConfig{SampleRate: 44100, FFTSize: 1024, HopSize: 256,
			Window: WindowHanning, LowBin: 50, HighBin: 60, Engine: EngineGoertzel}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const lanes = 4
			bs, err := NewBatchSTFT(tc.cfg, lanes)
			if err != nil {
				t.Fatal(err)
			}
			frames := batchFrames(bs.Config().FFTSize, lanes)
			dsts := make([][]float64, lanes)
			for l := range dsts {
				dsts[l] = make([]float64, bs.Bins())
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := bs.Columns(frames, dsts); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("Columns allocated %v times per call, want 0", allocs)
			}
		})
	}
}

func TestBatchPlanErrors(t *testing.T) {
	if _, err := NewBatchPlan(1000, 4); err == nil {
		t.Fatal("non-power-of-two size accepted")
	}
	if _, err := NewBatchPlan(1024, 0); err == nil {
		t.Fatal("zero lanes accepted")
	}
	p, err := NewBatchPlan(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	frames := batchFrames(1024, 3)
	good := [][]float64{make([]float64, 100), make([]float64, 100)}
	if err := p.Columns(frames, nil, 0, 100, good[:2]); err == nil || len(frames) == 0 {
		t.Fatalf("3 frames on a 2-lane plan accepted: %v", err)
	}
	if err := p.Columns(frames[:2], nil, 0, 100, good[:1]); err == nil {
		t.Fatal("dst count mismatch accepted")
	}
	if err := p.Columns(frames[:2], nil, 400, 513, good); err == nil {
		t.Fatal("band past n/2 accepted")
	}
	if err := p.Columns(frames[:2], make([]float64, 8), 0, 100, good); err == nil {
		t.Fatal("short window accepted")
	}
	if err := p.Columns([][]float64{frames[0][:512], frames[1]}, nil, 0, 100, good); err == nil {
		t.Fatal("short frame accepted")
	}
	if err := p.Columns(frames[:2], nil, 0, 99, good); err == nil {
		t.Fatal("dst length mismatch accepted")
	}
}

func TestBatchSTFTErrors(t *testing.T) {
	if _, err := NewBatchSTFT(DefaultSTFTConfig(), 0); err == nil {
		t.Fatal("zero lanes accepted")
	}
	bad := DefaultSTFTConfig()
	bad.FFTSize = 1000
	if _, err := NewBatchSTFT(bad, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
	bs, err := NewBatchSTFT(DefaultSTFTConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	frames := batchFrames(bs.Config().FFTSize, 3)
	dsts := make([][]float64, 3)
	for l := range dsts {
		dsts[l] = make([]float64, bs.Bins())
	}
	if err := bs.Columns(frames, dsts); err == nil {
		t.Fatal("3 frames on a 2-lane batch accepted")
	}
}

// BenchmarkSTFTBatch measures the tentpole ratio directly: batch16 runs
// one 16-lane BatchSTFT pass per op; seq16 runs the same 16 columns
// through 16 per-session STFT instances, the pre-batching serving
// shape. Both live in one benchmark so the comparison is same-run; the
// committed baseline gates batch16 at 0 allocs/op.
func BenchmarkSTFTBatch(b *testing.B) {
	const lanes = 16
	cfg := DefaultSTFTConfig()
	frames := batchFrames(cfg.FFTSize, lanes)
	b.Run("batch16", func(b *testing.B) {
		bs, err := NewBatchSTFT(cfg, lanes)
		if err != nil {
			b.Fatal(err)
		}
		dsts := make([][]float64, lanes)
		for l := range dsts {
			dsts[l] = make([]float64, bs.Bins())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bs.Columns(frames, dsts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seq16", func(b *testing.B) {
		sts := make([]*STFT, lanes)
		dsts := make([][]float64, lanes)
		for l := range sts {
			st, err := NewSTFT(cfg)
			if err != nil {
				b.Fatal(err)
			}
			sts[l] = st
			dsts[l] = make([]float64, 0, st.Bins())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l, st := range sts {
				if _, err := st.FrameColumnInto(dsts[l][:0], frames[l]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
