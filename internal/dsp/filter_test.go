package dsp

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMovingAverageRejectsBadWindows(t *testing.T) {
	for _, w := range []int{0, -1, 2, 4} {
		if _, err := MovingAverage([]float64{1, 2, 3}, w); err == nil {
			t.Errorf("window %d accepted, want error", w)
		}
	}
}

func TestMovingAverageIdentityWindowOne(t *testing.T) {
	in := []float64{3, 1, 4, 1, 5}
	out, err := MovingAverage(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("window-1 altered element %d", i)
		}
	}
}

func TestMovingAverageWindowThree(t *testing.T) {
	out, err := MovingAverage([]float64{0, 3, 6, 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3, 6, 7.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestMovingAveragePreservesConstantProperty(t *testing.T) {
	// Property: a constant sequence is a fixed point of the SMA.
	f := func(c float64, nRaw uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e100 {
			return true // averaging huge magnitudes legitimately loses ulps
		}
		n := int(nRaw%32) + 1
		in := make([]float64, n)
		for i := range in {
			in[i] = c
		}
		out, err := MovingAverage(in, 3)
		if err != nil {
			return false
		}
		for _, v := range out {
			if math.Abs(v-c) > 1e-9*(1+math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverageBoundsProperty(t *testing.T) {
	// Property: SMA output stays within [min, max] of input.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		in := make([]float64, 40)
		minV, maxV := math.Inf(1), math.Inf(-1)
		for i := range in {
			in[i] = rng.NormFloat64() * 50
			minV = math.Min(minV, in[i])
			maxV = math.Max(maxV, in[i])
		}
		out, err := MovingAverage(in, 5)
		if err != nil {
			return false
		}
		for _, v := range out {
			if v < minV-1e-9 || v > maxV+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMedian1DRemovesImpulse(t *testing.T) {
	in := []float64{0, 0, 100, 0, 0}
	out, err := Median1D(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[2] != 0 {
		t.Errorf("median failed to remove impulse: %v", out)
	}
}

func TestMedian1DRejectsBadWindows(t *testing.T) {
	if _, err := Median1D([]float64{1}, 2); err == nil {
		t.Error("even window accepted, want error")
	}
}

func TestMedian1DOutputIsInputElementProperty(t *testing.T) {
	// Property: every median output value occurs in the input.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 8))
		in := make([]float64, 25)
		members := make(map[float64]bool, 25)
		for i := range in {
			in[i] = math.Round(rng.NormFloat64() * 10)
			members[in[i]] = true
		}
		out, err := Median1D(in, 5)
		if err != nil {
			return false
		}
		for _, v := range out {
			if !members[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSmoothDerivativeLinearRamp(t *testing.T) {
	// Eq. 2 on a linear ramp returns the exact slope.
	in := make([]float64, 20)
	for i := range in {
		in[i] = 3 * float64(i)
	}
	out := SmoothDerivative(in)
	for i, v := range out {
		if math.Abs(v-3) > 1e-12 {
			t.Errorf("derivative[%d] = %g, want 3", i, v)
		}
	}
}

func TestSmoothDerivativeConstant(t *testing.T) {
	in := []float64{5, 5, 5, 5, 5, 5}
	for i, v := range SmoothDerivative(in) {
		if v != 0 {
			t.Errorf("derivative[%d] = %g, want 0", i, v)
		}
	}
}

func TestSmoothDerivativeShortInputs(t *testing.T) {
	if out := SmoothDerivative(nil); len(out) != 0 {
		t.Errorf("nil input gave %v", out)
	}
	if out := SmoothDerivative([]float64{7}); len(out) != 1 || out[0] != 0 {
		t.Errorf("single-sample input gave %v", out)
	}
	out := SmoothDerivative([]float64{1, 3})
	if out[0] != 2 || out[1] != 2 {
		t.Errorf("two-sample input gave %v, want [2 2]", out)
	}
}

func TestZeroOneNormalize(t *testing.T) {
	in := []float64{2, 4, 6}
	out := ZeroOneNormalize(in)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
	// Constant input maps to zeros.
	c := []float64{3, 3, 3}
	for i, v := range ZeroOneNormalize(c) {
		if v != 0 {
			t.Errorf("constant[%d] = %g, want 0", i, v)
		}
	}
	// Empty is a no-op.
	if out := ZeroOneNormalize(nil); len(out) != 0 {
		t.Error("nil input should return empty")
	}
}

func TestZeroOneNormalizeRangeProperty(t *testing.T) {
	// Property: output is always within [0,1] with both endpoints hit.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		in := make([]float64, 16)
		for i := range in {
			in[i] = rng.NormFloat64() * 100
		}
		out := ZeroOneNormalize(append([]float64(nil), in...))
		sawZero, sawOne := false, false
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			if v == 0 {
				sawZero = true
			}
			if v == 1 {
				sawOne = true
			}
		}
		return sawZero && sawOne
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
