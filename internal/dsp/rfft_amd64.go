//go:build amd64

package dsp

// hasAVX reports whether the CPU and OS support 256-bit AVX state. The
// radix-4 DIF stages use a two-butterfly-per-iteration AVX kernel when
// available; the pure-Go loop in forwardDIF is the fallback and the
// semantics reference (the kernel performs the same flops in the same
// order, so magnitudes are bit-identical).
var hasAVX = cpuHasAVX()

// cpuHasAVX checks CPUID for AVX and OSXSAVE and XGETBV for YMM state
// enablement. Implemented in rfft_amd64.s.
func cpuHasAVX() bool

// difStageAVX runs one radix-4 DIF stage of the given span over z,
// processing two butterflies per iteration. twv is the stage's
// lane-duplicated twiddle table (see newStageTwiddlesVec). span must be
// >= 8 so every block holds at least one butterfly pair, and the caller
// must have verified hasAVX. Implemented in rfft_amd64.s.
//
//go:noescape
func difStageAVX(z []complex128, twv []float64, span int)
