package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewFFTPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 12, 100} {
		if _, err := NewFFTPlan(n); err == nil {
			t.Errorf("NewFFTPlan(%d) succeeded, want error", n)
		}
	}
}

func TestNewFFTPlanAcceptsPowersOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024, 8192} {
		p, err := NewFFTPlan(n)
		if err != nil {
			t.Fatalf("NewFFTPlan(%d): %v", n, err)
		}
		if p.Size() != n {
			t.Errorf("Size() = %d, want %d", p.Size(), n)
		}
	}
}

func TestForwardLengthMismatch(t *testing.T) {
	p, err := NewFFTPlan(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Forward(make([]complex128, 4)); err == nil {
		t.Error("Forward with wrong length succeeded, want error")
	}
	if err := p.Inverse(make([]complex128, 16)); err == nil {
		t.Error("Inverse with wrong length succeeded, want error")
	}
}

func TestForwardImpulse(t *testing.T) {
	// The DFT of a unit impulse is all ones.
	p, err := NewFFTPlan(16)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 16)
	x[0] = 1
	if err := p.Forward(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestForwardSingleTone(t *testing.T) {
	// A complex exponential at bin k0 transforms to n·δ[k-k0].
	const n, k0 = 64, 5
	p, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*k0*float64(i)/n))
	}
	if err := p.Forward(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		want := complex(0, 0)
		if k == k0 {
			want = complex(n, 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Errorf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestRealSineMagnitude(t *testing.T) {
	// A real sine at bin k0 with amplitude a yields |X[k0]| = a·n/2.
	const n, k0, amp = 256, 17, 0.5
	p, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]float64, n)
	for i := range frame {
		frame[i] = amp * math.Sin(2*math.Pi*k0*float64(i)/n)
	}
	spec, err := p.ForwardReal(frame)
	if err != nil {
		t.Fatal(err)
	}
	got := cmplx.Abs(spec[k0])
	want := amp * n / 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("|X[%d]| = %g, want %g", k0, got, want)
	}
}

func TestForwardRealZeroPads(t *testing.T) {
	p, err := NewFFTPlan(8)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := p.ForwardReal([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 8 {
		t.Fatalf("spectrum length = %d, want 8", len(spec))
	}
	// DC bin should be the sample sum.
	if cmplx.Abs(spec[0]-2) > 1e-12 {
		t.Errorf("DC bin = %v, want 2", spec[0])
	}
	if _, err := p.ForwardReal(make([]float64, 9)); err == nil {
		t.Error("over-long frame accepted, want error")
	}
}

func TestInverseRoundTripProperty(t *testing.T) {
	// Property: IFFT(FFT(x)) == x for random signals.
	p, err := NewFFTPlan(128)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		x := make([]complex128, 128)
		orig := make([]complex128, 128)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := p.Forward(x); err != nil {
			return false
		}
		if err := p.Inverse(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Property: Σ|x|² == (1/n)·Σ|X|² (energy conservation).
	p, err := NewFFTPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		x := make([]complex128, 64)
		timeEnergy := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		if err := p.Forward(x); err != nil {
			return false
		}
		freqEnergy := 0.0
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= 64
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	// Property: FFT(a·x + y) == a·FFT(x) + FFT(y).
	p, err := NewFFTPlan(32)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		x := make([]complex128, 32)
		y := make([]complex128, 32)
		combo := make([]complex128, 32)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			combo[i] = a*x[i] + y[i]
		}
		if err := p.Forward(x); err != nil {
			return false
		}
		if err := p.Forward(y); err != nil {
			return false
		}
		if err := p.Forward(combo); err != nil {
			return false
		}
		for i := range combo {
			if cmplx.Abs(combo[i]-(a*x[i]+y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMagnitudes(t *testing.T) {
	spec := []complex128{3 + 4i, 0, -5}
	got := Magnitudes(spec, nil)
	want := []float64{5, 0, 5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Magnitudes[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Partial dst restricts output length.
	dst := make([]float64, 2)
	got = Magnitudes(spec, dst)
	if len(got) != 2 {
		t.Errorf("partial dst length = %d, want 2", len(got))
	}
}

func BenchmarkFFT8192(b *testing.B) {
	p, err := NewFFTPlan(8192)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]complex128, 8192)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.transform(x, false)
	}
}
