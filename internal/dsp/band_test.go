package dsp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// referenceColumns computes a spectrogram under the full-FFT reference
// engine — the ground truth of the differential harness.
func referenceColumns(t testing.TB, cfg STFTConfig, signal []float64) *Spectrogram {
	t.Helper()
	ref := cfg
	ref.Engine = EngineFFT
	st, err := NewSTFT(ref)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := st.Compute(signal)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// randomSignal draws a deterministic pseudo-random signal in [-1, 1].
func randomSignal(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = 2*rng.Float64() - 1
	}
	return sig
}

// TestBandEngineMatchesReference is the differential equivalence suite:
// randomized signals × all window kinds × band edges (degenerate 1-bin
// bands, DC and Nyquist edges, the full half-spectrum, the paper's
// default band), asserting every band-engine column matches the full-FFT
// reference per bin within the 1e-9 harness tolerance.
func TestBandEngineMatchesReference(t *testing.T) {
	type bandCase struct {
		name      string
		low, high func(n int) int
	}
	bands := []bandCase{
		{"default-paper-band", func(n int) int { return n * 3628 / 8192 }, func(n int) int { return n*3978/8192 + 1 }},
		{"single-bin-dc", func(n int) int { return 0 }, func(n int) int { return 1 }},
		{"single-bin-mid", func(n int) int { return n / 4 }, func(n int) int { return n/4 + 1 }},
		{"single-bin-top", func(n int) int { return n/2 - 1 }, func(n int) int { return n / 2 }},
		{"dc-edge", func(n int) int { return 0 }, func(n int) int { return 9 }},
		{"nyquist-edge", func(n int) int { return n/2 - 9 }, func(n int) int { return n / 2 }},
		{"full-half-spectrum", func(n int) int { return 0 }, func(n int) int { return n / 2 }},
	}
	windows := []WindowKind{WindowHanning, WindowHamming, WindowRectangular, WindowBlackman}
	engines := []EngineKind{EngineAuto, EngineRFFT, EngineGoertzel}
	sizes := []int{64, 1024}
	for _, n := range sizes {
		for _, bc := range bands {
			for _, win := range windows {
				cfg := STFTConfig{
					SampleRate: 44100,
					FFTSize:    n,
					HopSize:    n / 4,
					Window:     win,
					LowBin:     bc.low(n),
					HighBin:    bc.high(n),
				}
				for seed := int64(1); seed <= 3; seed++ {
					sig := randomSignal(seed*int64(n), 3*n)
					want := referenceColumns(t, cfg, sig)
					for _, eng := range engines {
						c := cfg
						c.Engine = eng
						st, err := NewSTFT(c)
						if err != nil {
							t.Fatalf("n=%d band=%s win=%v engine=%v: %v", n, bc.name, win, eng, err)
						}
						got, err := st.Compute(sig)
						if err != nil {
							t.Fatalf("n=%d band=%s win=%v engine=%v: %v", n, bc.name, win, eng, err)
						}
						assertSpectrogramsClose(t, got, want,
							"n=%d band=%s win=%v engine=%v seed=%d", n, bc.name, win, eng, seed)
					}
				}
			}
		}
	}
}

// TestBandEngineMatchesReferencePaperConfig pins the differential bound
// at the exact serving configuration (8192/1024, 351-bin band).
func TestBandEngineMatchesReferencePaperConfig(t *testing.T) {
	cfg := DefaultSTFTConfig()
	sig := randomSignal(42, 4*cfg.FFTSize)
	// Add a strong in-band tone so the band isn't just noise floor.
	for i := range sig {
		sig[i] += 5 * math.Sin(2*math.Pi*20000*float64(i)/cfg.SampleRate)
	}
	want := referenceColumns(t, cfg, sig)
	for _, eng := range []EngineKind{EngineAuto, EngineRFFT, EngineGoertzel} {
		c := cfg
		c.Engine = eng
		st, err := NewSTFT(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Compute(sig)
		if err != nil {
			t.Fatal(err)
		}
		assertSpectrogramsClose(t, got, want, "engine=%v", eng)
	}
}

func assertSpectrogramsClose(t *testing.T, got, want *Spectrogram, format string, args ...any) {
	t.Helper()
	if got.Frames() != want.Frames() || got.Bins() != want.Bins() || got.BinLow != want.BinLow {
		t.Fatalf("%s: shape %dx%d@%d, want %dx%d@%d",
			fmtArgs(format, args), got.Frames(), got.Bins(), got.BinLow, want.Frames(), want.Bins(), want.BinLow)
	}
	for f := range want.Data {
		for b := range want.Data[f] {
			if !withinTol(got.Data[f][b], want.Data[f][b]) {
				t.Fatalf("%s: frame %d bin %d: got %.17g, reference %.17g (Δ=%g)",
					fmtArgs(format, args), f, b, got.Data[f][b], want.Data[f][b],
					math.Abs(got.Data[f][b]-want.Data[f][b]))
			}
		}
	}
}

func fmtArgs(format string, args []any) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}

// TestEngineAutoSelection pins the cost-based choice: wide bands go to
// the rfft path, narrow bands to the Goertzel bank.
func TestEngineAutoSelection(t *testing.T) {
	cfg := DefaultSTFTConfig() // 351 bins: far past the Goertzel crossover
	st, err := NewSTFT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.EngineKind() != EngineRFFT {
		t.Errorf("default band auto-selected %v, want rfft", st.EngineKind())
	}
	narrow := cfg
	narrow.HighBin = narrow.LowBin + 8
	st, err = NewSTFT(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if st.EngineKind() != EngineGoertzel {
		t.Errorf("8-bin band auto-selected %v, want goertzel", st.EngineKind())
	}
	forced := cfg
	forced.Engine = EngineFFT
	st, err = NewSTFT(forced)
	if err != nil {
		t.Fatal(err)
	}
	if st.EngineKind() != EngineFFT {
		t.Errorf("forced reference engine reports %v", st.EngineKind())
	}
}

func TestBandTransformValidation(t *testing.T) {
	if _, err := NewBandTransform(100, 0, 10, EngineAuto); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	if _, err := NewBandTransform(64, -1, 10, EngineAuto); err == nil {
		t.Error("negative low bin accepted")
	}
	if _, err := NewBandTransform(64, 0, 33, EngineAuto); err == nil {
		t.Error("band past Nyquist accepted")
	}
	if _, err := NewBandTransform(64, 5, 5, EngineAuto); err == nil {
		t.Error("empty band accepted")
	}
	if _, err := NewBandTransform(64, 0, 10, EngineFFT); err == nil {
		t.Error("EngineFFT accepted as a band engine")
	}
	bt, err := NewBandTransform(64, 3, 11, EngineGoertzel)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Size() != 64 {
		t.Errorf("Size() = %d", bt.Size())
	}
	if lo, hi := bt.Band(); lo != 3 || hi != 11 {
		t.Errorf("Band() = [%d,%d)", lo, hi)
	}
	if err := bt.Magnitudes(make([]float64, 32), make([]float64, 8)); err == nil {
		t.Error("short frame accepted")
	}
	if err := bt.Magnitudes(make([]float64, 64), make([]float64, 4)); err == nil {
		t.Error("short dst accepted")
	}
	rb, err := NewBandTransform(64, 3, 11, EngineRFFT)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Magnitudes(make([]float64, 64), make([]float64, 4)); err == nil {
		t.Error("rfft band: short dst accepted")
	}
	if err := rb.Magnitudes(make([]float64, 12), make([]float64, 8)); err == nil {
		t.Error("rfft band: short frame accepted")
	}
}

func TestEngineKindString(t *testing.T) {
	for kind, want := range map[EngineKind]string{
		EngineAuto:     "auto",
		EngineFFT:      "fft",
		EngineRFFT:     "rfft",
		EngineGoertzel: "goertzel",
		EngineKind(99): "EngineKind(99)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(kind), got, want)
		}
	}
}

// TestSTFTEngineValidation rejects unknown engine values at config time.
func TestSTFTEngineValidation(t *testing.T) {
	cfg := DefaultSTFTConfig()
	cfg.Engine = EngineKind(7)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := NewSTFT(cfg); err == nil {
		t.Error("NewSTFT accepted unknown engine")
	}
}
