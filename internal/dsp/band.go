package dsp

import (
	"fmt"
	"math"
)

// EngineKind selects the spectral engine an STFT uses to turn a windowed
// frame into magnitude bins.
type EngineKind int

const (
	// EngineAuto picks the cheapest engine for the configured band: a
	// Goertzel bank when the band is narrow enough that O(N·B) direct
	// recurrences beat a transform, otherwise the real-input half-spectrum
	// plan with band-only unpacking. This is the default (zero value) and
	// the serving path's engine.
	EngineAuto EngineKind = iota
	// EngineFFT is the paper's naive formulation — a full N-point complex
	// FFT per frame — kept as the bit-for-bit reference the band engines
	// are differentially tested against.
	EngineFFT
	// EngineRFFT computes the full non-negative half-spectrum with the
	// real-input plan, then crops to the band. It exists to separate the
	// rfft win from the band-unpacking win in benchmarks.
	EngineRFFT
	// EngineGoertzel forces the Goertzel bank regardless of band width.
	EngineGoertzel
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case EngineAuto:
		return "auto"
	case EngineFFT:
		return "fft"
	case EngineRFFT:
		return "rfft"
	case EngineGoertzel:
		return "goertzel"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// goertzelMaxBand is the widest band (in bins) for which EngineAuto picks
// the Goertzel bank. The bank costs O(N·B) fused recurrence steps while
// the rfft path costs O(N·log N) butterflies regardless of B, so the
// classic crossover sits near B ≈ log2 N; measured on this codebase the
// bank stops winning a little above that, so auto switches at 2·log2 N.
func goertzelMaxBand(n int) int {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	return 2 * bits
}

// BandTransform computes the magnitudes of DFT bins [Low, High) of a
// real windowed frame without materializing the rest of the spectrum.
// Implementations own scratch state and are not safe for concurrent use.
type BandTransform interface {
	// Magnitudes writes |X[k]| for k in [Low, High) into dst, which must
	// have length High-Low. frame must have length Size.
	Magnitudes(frame []float64, dst []float64) error
	// Size reports the frame length (the DFT size N).
	Size() int
	// Band reports the computed bin range [low, high).
	Band() (low, high int)
	// Kind reports the concrete engine implementation.
	Kind() EngineKind
}

// windowedBandTransform is implemented by band engines that can fuse the
// analysis-window multiply into their first pass over the frame, saving a
// separate read-modify-write sweep per column. win must have frame
// length; the result equals Window.Apply followed by Magnitudes.
type windowedBandTransform interface {
	WindowedMagnitudes(frame, win, dst []float64) error
}

// NewBandTransform builds a band-limited engine for bins [low, high) of
// an n-point DFT. kind may be EngineAuto (cost-based choice),
// EngineGoertzel or EngineRFFT; EngineFFT is not a band engine — the STFT
// handles it as the reference path.
func NewBandTransform(n, low, high int, kind EngineKind) (BandTransform, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: band transform size must be a power of two >= 2, got %d", n)
	}
	if low < 0 || high > n/2 || low >= high {
		return nil, fmt.Errorf("dsp: band [%d,%d) invalid for transform size %d", low, high, n)
	}
	switch kind {
	case EngineAuto:
		if high-low <= goertzelMaxBand(n) {
			return newGoertzelBank(n, low, high)
		}
		return newRFFTBand(n, low, high)
	case EngineGoertzel:
		return newGoertzelBank(n, low, high)
	case EngineRFFT:
		return newRFFTBand(n, low, high)
	default:
		return nil, fmt.Errorf("dsp: %v is not a band engine", kind)
	}
}

// GoertzelBank evaluates each retained bin with the Goertzel recurrence
//
//	s[j] = x[j] + 2·cos(2πk/N)·s[j-1] - s[j-2]
//
// in its Reinsch-stabilized difference forms. The plain recurrence has a
// double pole at the bin frequency, so for ω near 0 or π the states grow
// to O(N·|s|) and the final cancellation loses ~N·ε absolute accuracy —
// enough to break the 1e-9 differential bound at an 8192-point frame.
// Carrying the first difference σ = s[j]−s[j-1] (ω ≤ π/2, with
// d = 4·sin²(ω/2)) or the first sum τ = s[j]+s[j-1] (ω > π/2, with
// d = 4·cos²(ω/2)) explicitly keeps rounding errors from being amplified
// by the pole:
//
//	minus form: σ ← σ − d·s + x ;  s ← s + σ
//	plus  form: τ ← d·s − τ + x ;  s ← τ − s
//
// and the magnitude follows from the closed forms
//
//	|X|² = σ² + d·s·(s−σ)   (minus)
//	|X|² = τ² − d·s·(τ−s)   (plus)
//
// The states of all B bins live in flat arrays updated together per
// sample, so the inner loop streams the frame once while the ~3·B floats
// of state stay resident in L1 — the cache-friendly arrangement the
// recurrences need to be throughput- rather than latency-bound.
type GoertzelBank struct {
	n         int
	low, high int
	// Bins [low, split) run the minus form, [split, high) the plus form;
	// the split sits at ω = π/2, i.e. bin n/4.
	split int
	dm    []float64 // minus-form d = 4·sin²(ω/2), indexed by bin-low
	dp    []float64 // plus-form d = 4·cos²(ω/2), indexed by bin-split
	s     []float64 // recurrence state per bin
	aux   []float64 // σ (minus) or τ (plus) per bin
}

func newGoertzelBank(n, low, high int) (*GoertzelBank, error) {
	b := high - low
	split := n / 4
	if split < low {
		split = low
	}
	if split > high {
		split = high
	}
	g := &GoertzelBank{
		n: n, low: low, high: high, split: split,
		dm:  make([]float64, split-low),
		dp:  make([]float64, high-split),
		s:   make([]float64, b),
		aux: make([]float64, b),
	}
	for k := low; k < split; k++ {
		h := math.Pi * float64(k) / float64(n) // ω/2
		sin := math.Sin(h)
		g.dm[k-low] = 4 * sin * sin
	}
	for k := split; k < high; k++ {
		h := math.Pi * float64(k) / float64(n)
		cos := math.Cos(h)
		g.dp[k-split] = 4 * cos * cos
	}
	return g, nil
}

// Size implements BandTransform.
func (g *GoertzelBank) Size() int { return g.n }

// Band implements BandTransform.
func (g *GoertzelBank) Band() (int, int) { return g.low, g.high }

// Kind implements BandTransform.
func (g *GoertzelBank) Kind() EngineKind { return EngineGoertzel }

// Magnitudes implements BandTransform.
func (g *GoertzelBank) Magnitudes(frame []float64, dst []float64) error {
	return g.run(frame, nil, dst)
}

// WindowedMagnitudes implements windowedBandTransform: the window multiply
// fuses into the recurrence's sample loop, so the frame is streamed once.
func (g *GoertzelBank) WindowedMagnitudes(frame, win, dst []float64) error {
	if len(win) != g.n {
		return fmt.Errorf("dsp: window length %d does not match transform size %d", len(win), g.n)
	}
	return g.run(frame, win, dst)
}

// run drives the stabilized recurrences over one frame; win is nil for the
// unwindowed path.
//
// ew:hotpath — O(N·B) fused recurrence updates per column; the loops must
// stay allocation-free and branch-free.
func (g *GoertzelBank) run(frame, win []float64, dst []float64) error {
	if len(frame) != g.n {
		return fmt.Errorf("dsp: frame length %d does not match transform size %d", len(frame), g.n)
	}
	if len(dst) != g.high-g.low {
		return fmt.Errorf("dsp: dst length %d does not match band width %d", len(dst), g.high-g.low)
	}
	for i := range g.s {
		g.s[i] = 0
		g.aux[i] = 0
	}
	nm := g.split - g.low
	if nm > 0 {
		s, sig, dm := g.s[:nm], g.aux[:nm], g.dm
		for j, x := range frame {
			if win != nil {
				x *= win[j]
			}
			for i, d := range dm {
				sg := sig[i] - d*s[i] + x
				sig[i] = sg
				s[i] += sg
			}
		}
		for i, d := range dm {
			sg, sv := sig[i], s[i]
			m2 := sg*sg + d*sv*(sv-sg)
			if m2 < 0 {
				m2 = 0 // rounding can drive a zero magnitude slightly negative
			}
			dst[i] = math.Sqrt(m2)
		}
	}
	if np := g.high - g.split; np > 0 {
		s, tau, dp := g.s[nm:], g.aux[nm:], g.dp
		for j, x := range frame {
			if win != nil {
				x *= win[j]
			}
			for i, d := range dp {
				t := d*s[i] - tau[i] + x
				tau[i] = t
				s[i] = t - s[i]
			}
		}
		for i, d := range dp {
			t, sv := tau[i], s[i]
			m2 := t*t - d*sv*(t-sv)
			if m2 < 0 {
				m2 = 0 // rounding can drive a zero magnitude slightly negative
			}
			dst[nm+i] = math.Sqrt(m2)
		}
	}
	return nil
}

// rfftBand computes the band through the real-input half-spectrum plan
// but unpacks only the retained bins, so the post-twiddle pass and the
// magnitude pass cost O(B) instead of O(N/2).
type rfftBand struct {
	plan      *RFFTPlan
	low, high int
}

func newRFFTBand(n, low, high int) (*rfftBand, error) {
	plan, err := NewRFFTPlan(n)
	if err != nil {
		return nil, err
	}
	return &rfftBand{plan: plan, low: low, high: high}, nil
}

// Size implements BandTransform.
func (r *rfftBand) Size() int { return r.plan.Size() }

// Band implements BandTransform.
func (r *rfftBand) Band() (int, int) { return r.low, r.high }

// Kind implements BandTransform.
func (r *rfftBand) Kind() EngineKind { return EngineRFFT }

// Magnitudes implements BandTransform.
func (r *rfftBand) Magnitudes(frame []float64, dst []float64) error {
	return r.run(frame, nil, dst)
}

// WindowedMagnitudes implements windowedBandTransform: the window multiply
// fuses into the even/odd pack pass, so the frame is streamed once.
func (r *rfftBand) WindowedMagnitudes(frame, win, dst []float64) error {
	return r.run(frame, win, dst)
}

// run computes the band magnitudes; win is nil for the unwindowed path.
//
// ew:hotpath — one half-size transform plus O(B) unpack+magnitude work
// per column; the loops must stay allocation-free.
func (r *rfftBand) run(frame, win []float64, dst []float64) error {
	if len(dst) != r.high-r.low {
		return fmt.Errorf("dsp: dst length %d does not match band width %d", len(dst), r.high-r.low)
	}
	if err := r.plan.transformHalf(frame, win); err != nil {
		return err
	}
	for i := range dst {
		x := r.plan.unpackBin(r.low + i)
		dst[i] = math.Sqrt(real(x)*real(x) + imag(x)*imag(x))
	}
	return nil
}
