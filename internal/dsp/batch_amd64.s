// AVX-512 kernels for the batched spectral path (BatchPlan). The quad
// kernel is the 512-bit widening of difStageAVX: four butterflies per
// iteration, each 512-bit register holding four interleaved complex128
// values. EVEX has no VADDSUBPD, so the shuffle + vaddsubpd complex
// multiply becomes shuffle + sign-flip + vaddpd — x−y and x+(−y) are
// the same IEEE operation bit for bit, so the kernel still performs
// exactly the flops of the pure-Go loop in forwardDIF, in the same
// order, and band magnitudes remain bit-identical across the scalar,
// AVX and AVX-512 tiers (intermediate spectra may differ only in the
// sign of zeros, exactly as for difStageAVX).
//
// packMulAVX is the elementwise window multiply of the even/odd pack
// pass (transformHalf's fused loop): dst[i] = frame[i]·win[i]
// reinterpreted as interleaved complex128. Pure elementwise multiplies,
// so it is trivially bit-identical to the scalar pack.

#include "textflag.h"

// signOdd512 flips the sign of the odd (imaginary) lanes.
DATA signOdd512<>+0(SB)/8, $0x0000000000000000
DATA signOdd512<>+8(SB)/8, $0x8000000000000000
DATA signOdd512<>+16(SB)/8, $0x0000000000000000
DATA signOdd512<>+24(SB)/8, $0x8000000000000000
DATA signOdd512<>+32(SB)/8, $0x0000000000000000
DATA signOdd512<>+40(SB)/8, $0x8000000000000000
DATA signOdd512<>+48(SB)/8, $0x0000000000000000
DATA signOdd512<>+56(SB)/8, $0x8000000000000000
GLOBL signOdd512<>(SB), RODATA|NOPTR, $64

// signEven512 flips the sign of the even (real) lanes; XOR with it then
// VADDPD reproduces VADDSUBPD (subtract even, add odd) bit for bit.
DATA signEven512<>+0(SB)/8, $0x8000000000000000
DATA signEven512<>+8(SB)/8, $0x0000000000000000
DATA signEven512<>+16(SB)/8, $0x8000000000000000
DATA signEven512<>+24(SB)/8, $0x0000000000000000
DATA signEven512<>+32(SB)/8, $0x8000000000000000
DATA signEven512<>+40(SB)/8, $0x0000000000000000
DATA signEven512<>+48(SB)/8, $0x8000000000000000
DATA signEven512<>+56(SB)/8, $0x0000000000000000
GLOBL signEven512<>(SB), RODATA|NOPTR, $64

// func cpuHasAVX512() bool
TEXT ·cpuHasAVX512(SB), NOSPLIT, $0-1
	// Leaf 1: OSXSAVE (bit 27) and AVX (bit 28) in CX.
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  no512
	// Leaf 7 subleaf 0: AVX512F (bit 16) and AVX512DQ (bit 17) in BX
	// (DQ covers the EVEX VXORPD the kernels use).
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $0x00030000, BX
	CMPL BX, $0x00030000
	JNE  no512
	// XCR0: SSE (1), AVX (2), opmask (5), ZMM_Hi256 (6), Hi16_ZMM (7)
	// must all be OS-enabled for full 512-bit state.
	MOVL $0, CX
	XGETBV
	ANDL $0xE6, AX
	CMPL AX, $0xE6
	JNE  no512
	MOVB $1, ret+0(FP)
	RET
no512:
	MOVB $0, ret+0(FP)
	RET

// func difStageAVX512(z []complex128, tzv []float64, span int)
TEXT ·difStageAVX512(SB), NOSPLIT, $0-56
	MOVQ z_base+0(FP), SI
	MOVQ z_len+8(FP), CX      // remaining complexes
	MOVQ tzv_base+24(FP), BX
	MOVQ span+48(FP), R8      // span in complexes
	MOVQ R8, DX
	SHLQ $2, DX               // quarter stride: span/4 complexes × 16 B
	VMOVUPD signOdd512<>(SB), Z8
	VMOVUPD signEven512<>(SB), Z9
	MOVQ SI, DI               // current block

block:
	MOVQ DI, R10              // za
	LEAQ (DI)(DX*1), R11      // zb
	LEAQ (R11)(DX*1), R12     // zc
	LEAQ (R12)(DX*1), R13     // zd
	MOVQ BX, R9               // twiddles restart every block
	MOVQ R8, AX
	SHRQ $4, AX               // span/16 = q/4 butterfly quads

quad:
	VMOVUPD (R10), Z0         // a (four complexes)
	VMOVUPD (R11), Z1         // b
	VMOVUPD (R12), Z2         // c
	VMOVUPD (R13), Z3         // d
	VADDPD  Z2, Z0, Z4        // t0 = a+c
	VSUBPD  Z2, Z0, Z5        // t1 = a-c
	VADDPD  Z3, Z1, Z6        // t2 = b+d
	VSUBPD  Z3, Z1, Z7        // b-d
	VPERMILPD $0x55, Z7, Z7   // swap re/im within each complex
	VXORPD  Z8, Z7, Z7        // t3 = (b-d)·(-i)
	VADDPD  Z6, Z4, Z10       // y0 = t0+t2: twiddle-free
	VMOVUPD Z10, (R10)
	VSUBPD  Z6, Z4, Z10       // u2 = t0-t2
	VADDPD  Z7, Z5, Z11       // u1 = t1+t3
	VSUBPD  Z7, Z5, Z12       // u3 = t1-t3

	// y1 = u1·w1
	VMULPD  (R9), Z11, Z13
	VPERMILPD $0x55, Z11, Z14
	VMULPD  64(R9), Z14, Z14
	VXORPD  Z9, Z14, Z14
	VADDPD  Z14, Z13, Z13
	VMOVUPD Z13, (R11)

	// y2 = u2·w2
	VMULPD  128(R9), Z10, Z13
	VPERMILPD $0x55, Z10, Z14
	VMULPD  192(R9), Z14, Z14
	VXORPD  Z9, Z14, Z14
	VADDPD  Z14, Z13, Z13
	VMOVUPD Z13, (R12)

	// y3 = u3·w3
	VMULPD  256(R9), Z12, Z13
	VPERMILPD $0x55, Z12, Z14
	VMULPD  320(R9), Z14, Z14
	VXORPD  Z9, Z14, Z14
	VADDPD  Z14, Z13, Z13
	VMOVUPD Z13, (R13)

	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	ADDQ $64, R13
	ADDQ $384, R9
	DECQ AX
	JNZ  quad

	LEAQ (DI)(DX*4), DI       // next block
	SUBQ R8, CX
	JNZ  block

	VZEROUPPER
	RET

// permP2/permQ2 are VPERMT2PD index vectors for the fused span-16/4
// kernel: with S = [t0 t2 t0' t2'] as the first table and D/X as the
// second (indices 8..15), they gather [t0 t1 t0' t1'] and [t2 t3 t2' t3']
// (quarters are complex128 values, i.e. index pairs).
DATA permP2<>+0(SB)/8, $0
DATA permP2<>+8(SB)/8, $1
DATA permP2<>+16(SB)/8, $8
DATA permP2<>+24(SB)/8, $9
DATA permP2<>+32(SB)/8, $4
DATA permP2<>+40(SB)/8, $5
DATA permP2<>+48(SB)/8, $12
DATA permP2<>+56(SB)/8, $13
GLOBL permP2<>(SB), RODATA|NOPTR, $64

DATA permQ2<>+0(SB)/8, $2
DATA permQ2<>+8(SB)/8, $3
DATA permQ2<>+16(SB)/8, $10
DATA permQ2<>+24(SB)/8, $11
DATA permQ2<>+32(SB)/8, $6
DATA permQ2<>+40(SB)/8, $7
DATA permQ2<>+48(SB)/8, $14
DATA permQ2<>+56(SB)/8, $15
GLOBL permQ2<>(SB), RODATA|NOPTR, $64

// func difStage16x4AVX512(z []complex128, tzv []float64)
//
// Fused tail: one radix-4 DIF stage of span 16 followed immediately by
// the multiplication-free span-4 stage, per 16-complex block, entirely
// in registers. The four span-16 output vectors y0..y3 are exactly the
// four span-4 blocks of the next stage, so fusing skips a full
// load/store pass over the plane plus the scalar span-4 loop. tzv is
// the span-16 quad twiddle table (48 doubles, one quad per block,
// reused for every block). len(z) must be a multiple of 16.
//
// The span-4 butterflies run pairwise over two block registers x0, x1
// (each [a b c d]):
//
//	P = [a0 b0 a1 b1]   Q = [c0 d0 c1 d1]        (128-bit shuffles)
//	S = P+Q = [t0 t2 t0' t2']   D = P-Q = [t1 (b-d) t1' (b-d)']
//	X = swap(D) ⊕ signOdd: quarters 1,3 hold t3 = (b-d)·(-i)
//	P2 = [t0 t1 t0' t1']   Q2 = [t2 t3 t2' t3']  (two-table permutes)
//	out = [P2+Q2 | P2-Q2] interleaved back to [y0 y1 y2 y3] per block
//
// — the same adds, subtracts and (-i) formation as the scalar span-4
// loop, in the same order, so magnitudes stay bit-identical.
TEXT ·difStage16x4AVX512(SB), NOSPLIT, $0-48
	MOVQ z_base+0(FP), DI
	MOVQ z_len+8(FP), CX
	MOVQ tzv_base+24(FP), R9
	VMOVUPD signOdd512<>(SB), Z8
	VMOVUPD signEven512<>(SB), Z9
	VMOVUPD permP2<>(SB), Z20
	VMOVUPD permQ2<>(SB), Z21
	SHRQ $4, CX               // 16-complex blocks

blk16:
	VMOVUPD (DI), Z0          // a: complexes 0..3
	VMOVUPD 64(DI), Z1        // b: 4..7
	VMOVUPD 128(DI), Z2       // c: 8..11
	VMOVUPD 192(DI), Z3       // d: 12..15

	// Span-16 stage: one butterfly quad, twiddles from tzv.
	VADDPD  Z2, Z0, Z4        // t0 = a+c
	VSUBPD  Z2, Z0, Z5        // t1 = a-c
	VADDPD  Z3, Z1, Z6        // t2 = b+d
	VSUBPD  Z3, Z1, Z7        // b-d
	VPERMILPD $0x55, Z7, Z7
	VXORPD  Z8, Z7, Z7        // t3 = (b-d)·(-i)
	VADDPD  Z6, Z4, Z0        // y0 = t0+t2
	VSUBPD  Z6, Z4, Z10       // u2
	VADDPD  Z7, Z5, Z11       // u1
	VSUBPD  Z7, Z5, Z12       // u3

	VMULPD  (R9), Z11, Z13    // y1 = u1·w1
	VPERMILPD $0x55, Z11, Z14
	VMULPD  64(R9), Z14, Z14
	VXORPD  Z9, Z14, Z14
	VADDPD  Z14, Z13, Z1

	VMULPD  128(R9), Z10, Z13 // y2 = u2·w2
	VPERMILPD $0x55, Z10, Z14
	VMULPD  192(R9), Z14, Z14
	VXORPD  Z9, Z14, Z14
	VADDPD  Z14, Z13, Z2

	VMULPD  256(R9), Z12, Z13 // y3 = u3·w3
	VPERMILPD $0x55, Z12, Z14
	VMULPD  320(R9), Z14, Z14
	VXORPD  Z9, Z14, Z14
	VADDPD  Z14, Z13, Z3

	// Span-4 stage on register pair (Z0, Z1): blocks 0..3 and 4..7.
	VSHUFF64X2 $0x44, Z1, Z0, Z4   // P = [a0 b0 a1 b1]
	VSHUFF64X2 $0xEE, Z1, Z0, Z5   // Q = [c0 d0 c1 d1]
	VADDPD  Z5, Z4, Z6             // S
	VSUBPD  Z5, Z4, Z7             // D
	VPERMILPD $0x55, Z7, Z10
	VXORPD  Z8, Z10, Z10           // X
	VMOVAPD Z6, Z11
	VPERMT2PD Z7, Z20, Z11         // P2 = [t0 t1 t0' t1']
	VMOVAPD Z6, Z12
	VPERMT2PD Z10, Z21, Z12        // Q2 = [t2 t3 t2' t3']
	VADDPD  Z12, Z11, Z13          // [y0 y1 y0' y1']
	VSUBPD  Z12, Z11, Z14          // [y2 y3 y2' y3']
	VSHUFF64X2 $0x44, Z14, Z13, Z4
	VSHUFF64X2 $0xEE, Z14, Z13, Z5
	VMOVUPD Z4, (DI)
	VMOVUPD Z5, 64(DI)

	// Span-4 stage on register pair (Z2, Z3): blocks 8..11 and 12..15.
	VSHUFF64X2 $0x44, Z3, Z2, Z4
	VSHUFF64X2 $0xEE, Z3, Z2, Z5
	VADDPD  Z5, Z4, Z6
	VSUBPD  Z5, Z4, Z7
	VPERMILPD $0x55, Z7, Z10
	VXORPD  Z8, Z10, Z10
	VMOVAPD Z6, Z11
	VPERMT2PD Z7, Z20, Z11
	VMOVAPD Z6, Z12
	VPERMT2PD Z10, Z21, Z12
	VADDPD  Z12, Z11, Z13
	VSUBPD  Z12, Z11, Z14
	VSHUFF64X2 $0x44, Z14, Z13, Z4
	VSHUFF64X2 $0xEE, Z14, Z13, Z5
	VMOVUPD Z4, 128(DI)
	VMOVUPD Z5, 192(DI)

	ADDQ $256, DI
	DECQ CX
	JNZ  blk16

	VZEROUPPER
	RET

// func packMulAVX(dst []complex128, frame, win []float64)
TEXT ·packMulAVX(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ frame_base+24(FP), SI
	MOVQ frame_len+32(FP), CX // doubles; caller guarantees CX % 8 == 0
	MOVQ win_base+48(FP), BX
	SHRQ $3, CX               // 8 doubles per iteration

pack:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VMULPD  (BX), Y0, Y0
	VMULPD  32(BX), Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ $64, SI
	ADDQ $64, BX
	ADDQ $64, DI
	DECQ CX
	JNZ  pack

	VZEROUPPER
	RET
