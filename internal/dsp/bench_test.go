package dsp

import (
	"math"
	"testing"
)

// benchSignal synthesizes a deterministic multi-tone test signal long
// enough for a realistic spectrogram (2 s at the paper's rate).
func benchSignal(n int) []float64 {
	sig := make([]float64, n)
	for i := range sig {
		t := float64(i) / 44100
		sig[i] = math.Sin(2*math.Pi*20000*t) + 0.3*math.Sin(2*math.Pi*19800*t) + 0.05*math.Sin(2*math.Pi*440*t)
	}
	return sig
}

// BenchmarkSTFTCompute measures the full spectrogram computation for the
// paper's default 8192/1024/350-bin configuration under each engine. The
// band engine is the serving default; the full-FFT engine is the
// differential reference the band path is validated against.
func BenchmarkSTFTCompute(b *testing.B) {
	sig := benchSignal(2 * 44100)
	for _, eng := range []struct {
		name string
		kind EngineKind
	}{
		{"band", EngineAuto},
		{"rfft", EngineRFFT},
		{"goertzel", EngineGoertzel},
		{"fullfft", EngineFFT},
	} {
		b.Run(eng.name, func(b *testing.B) {
			cfg := DefaultSTFTConfig()
			cfg.Engine = eng.kind
			st, err := NewSTFT(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Compute(sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
