package dsp

import (
	"math"
	"testing"
)

func TestFIRBandpassValidation(t *testing.T) {
	if _, err := FIRBandpass(2, 44100, 100, 200); err == nil {
		t.Error("even taps accepted")
	}
	if _, err := FIRBandpass(11, 0, 100, 200); err == nil {
		t.Error("zero fs accepted")
	}
	if _, err := FIRBandpass(11, 44100, 300, 200); err == nil {
		t.Error("inverted band accepted")
	}
	if _, err := FIRBandpass(11, 44100, 100, 23000); err == nil {
		t.Error("band above Nyquist accepted")
	}
}

func TestFIRBandpassResponse(t *testing.T) {
	h, err := FIRBandpass(127, 44100, 19380, 20620)
	if err != nil {
		t.Fatal(err)
	}
	// Passband ~unity, stopbands strongly attenuated.
	pass := FrequencyResponse(h, 44100, 20000)
	if pass < 0.8 || pass > 1.2 {
		t.Errorf("passband gain %g, want ≈1", pass)
	}
	for _, f := range []float64{1000, 5000, 10000, 15000} {
		stop := FrequencyResponse(h, 44100, f)
		if stop > pass/8 {
			t.Errorf("stopband at %g Hz only attenuated to %g (pass %g)", f, stop, pass)
		}
	}
	// Linear phase: symmetric taps.
	for i := 0; i < len(h)/2; i++ {
		if math.Abs(h[i]-h[len(h)-1-i]) > 1e-12 {
			t.Fatalf("taps asymmetric at %d", i)
		}
	}
}

func TestFilterDecimateValidation(t *testing.T) {
	if _, err := FilterDecimate([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := FilterDecimate([]float64{1}, nil, 2); err == nil {
		t.Error("empty filter accepted")
	}
}

func TestFilterDecimateIdentity(t *testing.T) {
	// A single-tap unit filter with factor 1 is the identity.
	x := []float64{1, 2, 3, 4}
	out, err := FilterDecimate(x, []float64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if out[i] != x[i] {
			t.Errorf("out[%d] = %g", i, out[i])
		}
	}
}

func TestFilterDecimateLength(t *testing.T) {
	x := make([]float64, 1000)
	h, err := FIRBandpass(31, 44100, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	out, err := FilterDecimate(x, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 250 {
		t.Errorf("decimated length %d, want 250", len(out))
	}
}

func TestBandpassSamplingFoldsTone(t *testing.T) {
	// A 20 kHz tone at 44.1 kHz, bandpass-filtered and decimated by 8,
	// must appear at the aliased frequency 22050−20000 = 2050 Hz of the
	// 5512.5 Hz stream.
	const fs = 44100.0
	n := 1 << 14
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 20000 * float64(i) / fs)
	}
	h, err := FIRBandpass(127, fs, 19380, 20620)
	if err != nil {
		t.Fatal(err)
	}
	low, err := FilterDecimate(x, h, 8)
	if err != nil {
		t.Fatal(err)
	}
	fsOut := fs / 8
	energyAt := func(f float64) float64 {
		re, im := 0.0, 0.0
		w := 2 * math.Pi * f / fsOut
		for i, v := range low {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return math.Hypot(re, im)
	}
	folded := energyAt(2050)
	elsewhere := energyAt(500) + energyAt(1200) + energyAt(2600)
	if folded < 10*elsewhere {
		t.Errorf("folded tone %g not dominant over %g", folded, elsewhere)
	}
}
