package core

import (
	"fmt"
	"sort"

	"repro/internal/audio"
	"repro/internal/infer"
	"repro/internal/pipeline"
	"repro/internal/stroke"
)

// Phrase-level recognition is an extension beyond the paper: its prototype
// has the user confirm each word on screen, but a continuous writer
// naturally leaves a longer dwell between words than between strokes, so
// word boundaries are recoverable from inter-stroke gap statistics alone.
// Gaps are clustered with a one-dimensional 2-means split; when the split
// is ambiguous (a single word's worth of uniform gaps) the whole sequence
// is treated as one word.

// PhraseWord is one decoded word of a phrase recognition.
type PhraseWord struct {
	// Strokes is the recognized stroke sequence of this word.
	Strokes stroke.Sequence
	// Candidates are the ranked suggestions for this word.
	Candidates []infer.Candidate
}

// Top returns the word's best suggestion ("" if none).
func (w *PhraseWord) Top() string {
	if len(w.Candidates) == 0 {
		return ""
	}
	return w.Candidates[0].Word
}

// PhraseResult is the outcome of RecognizePhrase.
type PhraseResult struct {
	// Words are the decoded words in writing order.
	Words []PhraseWord
	// Recognition carries the pipeline-level details.
	Recognition *pipeline.Recognition
}

// Text joins the top candidates with spaces (missing words become "?").
func (r *PhraseResult) Text() string {
	out := ""
	for i := range r.Words {
		w := r.Words[i].Top()
		if w == "" {
			w = "?"
		}
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

// minWordGapRatio is how much larger a between-word gap must be than a
// within-word gap for the 2-means split to be trusted.
const minWordGapRatio = 1.6

// RecognizePhrase runs the signal chain once over a recording containing
// several words and decodes each word separately, finding boundaries from
// inter-stroke gaps.
func (s *System) RecognizePhrase(sig *audio.Signal) (*PhraseResult, error) {
	rec, err := s.engine.Recognize(sig)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res := &PhraseResult{Recognition: rec}
	if len(rec.Detections) == 0 {
		return res, nil
	}
	groups := splitByGaps(rec.Detections)
	for _, g := range groups {
		word := PhraseWord{}
		for _, d := range g {
			word.Strokes = append(word.Strokes, d.Stroke)
		}
		cands, err := s.recognizer.Recognize(word.Strokes)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		word.Candidates = cands
		res.Words = append(res.Words, word)
	}
	return res, nil
}

// splitByGaps groups consecutive detections into words using a 2-means
// clustering of the inter-segment gaps.
func splitByGaps(dets []pipeline.Detection) [][]pipeline.Detection {
	if len(dets) <= 1 {
		return [][]pipeline.Detection{dets}
	}
	gaps := make([]float64, len(dets)-1)
	for i := 1; i < len(dets); i++ {
		gaps[i-1] = float64(dets[i].Segment.Start - dets[i-1].Segment.End)
	}
	threshold, ok := twoMeansThreshold(gaps)
	if !ok {
		return [][]pipeline.Detection{dets}
	}
	var groups [][]pipeline.Detection
	cur := []pipeline.Detection{dets[0]}
	for i := 1; i < len(dets); i++ {
		if gaps[i-1] > threshold {
			groups = append(groups, cur)
			cur = nil
		}
		cur = append(cur, dets[i])
	}
	groups = append(groups, cur)
	return groups
}

// twoMeansThreshold splits values into small/large clusters and returns
// the midpoint between cluster means, or ok=false when the clusters are
// not separated enough to be meaningful.
func twoMeansThreshold(values []float64) (float64, bool) {
	if len(values) < 2 {
		return 0, false
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	// Initialize centers at the extremes, run a few Lloyd iterations.
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if hi <= 0 {
		return 0, false
	}
	for iter := 0; iter < 16; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		mid := (lo + hi) / 2
		for _, v := range sorted {
			if v <= mid {
				sumLo += v
				nLo++
			} else {
				sumHi += v
				nHi++
			}
		}
		if nLo == 0 || nHi == 0 {
			return 0, false
		}
		newLo, newHi := sumLo/float64(nLo), sumHi/float64(nHi)
		if newLo == lo && newHi == hi {
			break
		}
		lo, hi = newLo, newHi
	}
	if hi < lo*minWordGapRatio {
		return 0, false // unimodal gaps: a single word
	}
	return (lo + hi) / 2, true
}
