package core

import (
	"testing"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/infer"
	"repro/internal/participant"
	"repro/internal/stroke"
)

// newSystem builds a default System once; calibration synthesizes six
// scenes so construction is not free.
func newSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func recordWord(t *testing.T, word string, seed uint64) *capture.Recording {
	t.Helper()
	return recordWordOn(t, word, seed, acoustic.Mate9())
}

func recordWordOn(t *testing.T, word string, seed uint64, dev acoustic.DeviceProfile) *capture.Recording {
	t.Helper()
	sess := participant.NewSession(participant.SixParticipants()[0], seed)
	rec, err := capture.PerformWord(sess, stroke.DefaultScheme(), word,
		dev, acoustic.StandardEnvironment(acoustic.MeetingRoom), seed)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestSystemEndToEndWord(t *testing.T) {
	sys := newSystem(t)
	rec := recordWord(t, "me", 42)
	res, err := sys.RecognizeWords(rec.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strokes) != 2 {
		t.Fatalf("recognized %d strokes, want 2 (%v)", len(res.Strokes), res.Strokes)
	}
	found := false
	for _, c := range res.Candidates {
		if c.Word == "me" {
			found = true
		}
	}
	if !found {
		t.Errorf(`"me" not among candidates: %v`, res.Candidates)
	}
}

func TestSystemRecognizeStrokesOnly(t *testing.T) {
	sys := newSystem(t)
	rec := recordWord(t, "to", 7)
	out, err := sys.RecognizeStrokes(rec.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Segments) != 2 {
		t.Errorf("segments = %d, want 2", len(out.Segments))
	}
}

func TestSystemEnterWordSession(t *testing.T) {
	sys := newSystem(t)
	rec := recordWord(t, "the", 9)
	res, wr, err := sys.EnterWord("the", rec.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if wr == nil || res == nil {
		t.Fatal("nil results")
	}
	if res.Chosen == "" {
		t.Error("no word chosen")
	}
	sys.ResetSession()
}

func TestWordResultTop(t *testing.T) {
	empty := &WordResult{}
	if empty.Top() != "" {
		t.Error("empty Top should be empty string")
	}
	wr := &WordResult{Candidates: []infer.Candidate{{Word: "hi"}}}
	if wr.Top() != "hi" {
		t.Error("Top wrong")
	}
}

func TestNewValidatesOptions(t *testing.T) {
	bad := DefaultOptions()
	bad.Pipeline.CarrierHz = 5 // outside band
	if _, err := New(bad); err == nil {
		t.Error("invalid pipeline config accepted")
	}
	bad = DefaultOptions()
	bad.Inference.TopK = -1
	if _, err := New(bad); err == nil {
		t.Error("invalid inference config accepted")
	}
	bad = DefaultOptions()
	bad.Words = []string{"not-a-word-1"}
	if _, err := New(bad); err == nil {
		t.Error("invalid vocabulary accepted")
	}
}

func TestNewWithCustomVocabulary(t *testing.T) {
	opts := DefaultOptions()
	opts.Words = []string{"go", "run", "stop"}
	opts.AnalyticTemplates = true // skip calibration for speed
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Dictionary().Size() != 3 {
		t.Errorf("dictionary size = %d, want 3", sys.Dictionary().Size())
	}
}

func TestNewWithCustomScheme(t *testing.T) {
	// A custom scheme (swap two groups) must still cover the alphabet
	// and build cleanly.
	groups := map[stroke.Stroke]string{}
	for st, letters := range stroke.DefaultSchemeGroups {
		groups[st] = letters
	}
	groups[stroke.S1], groups[stroke.S2] = groups[stroke.S2], groups[stroke.S1]
	scheme, err := stroke.NewScheme(groups)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Scheme = scheme
	opts.AnalyticTemplates = true
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sys.Dictionary().Scheme().Encode("hi")
	if err != nil {
		t.Fatal(err)
	}
	// H and I were in S2's group; under the swapped scheme they are S1.
	if seq[0] != stroke.S1 {
		t.Errorf("custom scheme not honored: %v", seq)
	}
}

func TestPredictDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.DisablePrediction = true
	opts.AnalyticTemplates = true
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Predict("the") != nil {
		t.Error("prediction should be disabled")
	}
}

func TestLikelihoodScoringMode(t *testing.T) {
	opts := DefaultOptions()
	opts.LikelihoodScoring = true
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := recordWord(t, "water", 21)
	res, err := sys.RecognizeWords(rec.Signal)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Candidates {
		if c.Word == "water" {
			found = true
		}
	}
	if !found {
		t.Errorf(`likelihood scoring lost "water": %v`, res.Candidates)
	}
}
