// Package core assembles EchoWrite's end-to-end system — the paper's
// primary contribution — behind one facade: a System that takes raw
// microphone audio and produces ranked word candidates.
//
//	sys, _ := core.New(core.DefaultOptions())
//	result, _ := sys.RecognizeWords(signal)
//
// Internally a System owns the recognition pipeline (STFT → enhancement →
// MVCE → segmentation → DTW; see internal/pipeline), the word-inference
// layer (Bayesian scoring with stroke correction; see internal/infer) and
// the dictionary/bigram substrate (internal/lexicon). Templates are
// pipeline-calibrated at construction, preserving the paper's
// training-free property: no user data is ever recorded.
package core

import (
	"fmt"

	"repro/internal/audio"
	"repro/internal/calibrate"
	"repro/internal/infer"
	"repro/internal/lexicon"
	"repro/internal/pipeline"
	"repro/internal/stroke"
)

// Options configure a System. Zero-valued fields take paper defaults.
type Options struct {
	// Pipeline is the signal-chain configuration.
	Pipeline pipeline.Config
	// Inference configures word recognition (top-k, correction scope).
	Inference infer.Config
	// Scheme maps letters to strokes; nil means the default scheme.
	Scheme *stroke.Scheme
	// Words optionally overrides the vocabulary (ordered by descending
	// frequency). Empty means the embedded dictionary.
	Words []string
	// Confusion optionally overrides the stroke confusion model; nil
	// means the calibrated default.
	Confusion *infer.Confusion
	// DisablePrediction turns off bigram next-word prediction.
	DisablePrediction bool
	// AnalyticTemplates skips pipeline calibration and matches against
	// the pure analytic profiles (ablation use).
	AnalyticTemplates bool
	// LikelihoodScoring scores word candidates with the per-detection DTW
	// likelihoods instead of the global confusion matrix (an extension
	// beyond the paper; see infer.RecognizeWithLikelihoods).
	LikelihoodScoring bool
}

// DefaultOptions returns the paper's configuration end to end.
func DefaultOptions() Options {
	return Options{
		Pipeline:  pipeline.DefaultConfig(),
		Inference: infer.DefaultConfig(),
	}
}

// System is a ready-to-use EchoWrite recognizer. It is not safe for
// concurrent use; construct one per goroutine.
type System struct {
	engine            *pipeline.Engine
	recognizer        *infer.Recognizer
	dict              *lexicon.Dictionary
	session           *infer.Session
	likelihoodScoring bool
}

// New builds a System: generates (or calibrates) stroke templates, loads
// the dictionary, and wires the inference layer.
func New(opts Options) (*System, error) {
	scheme := opts.Scheme
	if scheme == nil {
		scheme = stroke.DefaultScheme()
	}
	words := opts.Words
	if len(words) == 0 {
		words = lexicon.DefaultWords()
	}
	dict, err := lexicon.NewDictionary(scheme, words)
	if err != nil {
		return nil, fmt.Errorf("core: building dictionary: %w", err)
	}

	var eng *pipeline.Engine
	if opts.AnalyticTemplates {
		eng, err = pipeline.NewEngine(opts.Pipeline)
	} else {
		eng, err = calibrate.NewCalibratedEngine(opts.Pipeline)
	}
	if err != nil {
		return nil, fmt.Errorf("core: building pipeline: %w", err)
	}

	confusion := opts.Confusion
	if confusion == nil {
		confusion = infer.DefaultConfusion()
	}
	var bigram *lexicon.Bigram
	if !opts.DisablePrediction {
		bigram = lexicon.DefaultBigram()
	}
	rec, err := infer.NewRecognizer(dict, confusion, bigram, opts.Inference)
	if err != nil {
		return nil, fmt.Errorf("core: building recognizer: %w", err)
	}
	sys := &System{engine: eng, recognizer: rec, dict: dict, likelihoodScoring: opts.LikelihoodScoring}
	sys.session = infer.NewSession(rec)
	return sys, nil
}

// Engine exposes the underlying signal pipeline (for experiments and
// diagnostics).
func (s *System) Engine() *pipeline.Engine { return s.engine }

// Recognizer exposes the word-inference layer.
func (s *System) Recognizer() *infer.Recognizer { return s.recognizer }

// Dictionary exposes the vocabulary.
func (s *System) Dictionary() *lexicon.Dictionary { return s.dict }

// WordResult is the outcome of recognizing one word's audio.
type WordResult struct {
	// Strokes is the recognized stroke sequence.
	Strokes stroke.Sequence
	// Candidates are the ranked word suggestions (up to TopK).
	Candidates []infer.Candidate
	// Recognition carries the pipeline-level details (profile, segments,
	// timings).
	Recognition *pipeline.Recognition
}

// Top returns the best word suggestion, or "" when none matched.
func (r *WordResult) Top() string {
	if len(r.Candidates) == 0 {
		return ""
	}
	return r.Candidates[0].Word
}

// RecognizeWords runs the full chain over one recording containing the
// strokes of a single word.
func (s *System) RecognizeWords(sig *audio.Signal) (*WordResult, error) {
	rec, err := s.engine.Recognize(sig)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out := &WordResult{Strokes: rec.Sequence, Recognition: rec}
	if len(rec.Sequence) == 0 {
		return out, nil
	}
	var cands []infer.Candidate
	if s.likelihoodScoring {
		rows := make([][stroke.NumStrokes]float64, len(rec.Detections))
		for i, d := range rec.Detections {
			rows[i] = d.Likelihoods
		}
		cands, err = s.recognizer.RecognizeWithLikelihoods(rec.Sequence, rows)
	} else {
		cands, err = s.recognizer.Recognize(rec.Sequence)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out.Candidates = cands
	return out, nil
}

// RecognizeStrokes runs only the signal chain, returning the pipeline
// recognition (for callers doing their own inference).
func (s *System) RecognizeStrokes(sig *audio.Signal) (*pipeline.Recognition, error) {
	rec, err := s.engine.Recognize(sig)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return rec, nil
}

// Predict suggests next words after prev (empty without a bigram model).
func (s *System) Predict(prev string) []string {
	return s.recognizer.Predict(prev)
}

// EnterWord advances the interactive session: recognize the audio of one
// intended word, consult predictions, and account the choice the way the
// paper's UI does (intended word picked when visible in top-k, else
// auto-accept of the top candidate after 1 s).
func (s *System) EnterWord(intended string, sig *audio.Signal) (*infer.SessionResult, *WordResult, error) {
	wr, err := s.RecognizeWords(sig)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.session.EnterWord(intended, wr.Strokes)
	if err != nil {
		return nil, wr, fmt.Errorf("core: %w", err)
	}
	return res, wr, nil
}

// ResetSession clears sentence context (start of a new phrase).
func (s *System) ResetSession() { s.session = infer.NewSession(s.recognizer) }
