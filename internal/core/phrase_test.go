package core

import (
	"testing"

	"repro/internal/acoustic"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/segment"
	"repro/internal/stroke"
)

func TestTwoMeansThreshold(t *testing.T) {
	// Clearly bimodal gaps.
	th, ok := twoMeansThreshold([]float64{10, 12, 11, 60, 10, 58})
	if !ok {
		t.Fatal("bimodal gaps not split")
	}
	if th < 12 || th > 58 {
		t.Errorf("threshold %g outside the gap valley", th)
	}
	// Unimodal gaps: no split.
	if _, ok := twoMeansThreshold([]float64{10, 11, 12, 10, 11}); ok {
		t.Error("unimodal gaps split")
	}
	if _, ok := twoMeansThreshold([]float64{10}); ok {
		t.Error("single gap split")
	}
	if _, ok := twoMeansThreshold([]float64{0, 0}); ok {
		t.Error("zero gaps split")
	}
}

func TestSplitByGaps(t *testing.T) {
	det := func(start, end int) pipeline.Detection {
		return pipeline.Detection{Segment: segment.Segment{Start: start, End: end}}
	}
	dets := []pipeline.Detection{
		det(0, 10), det(20, 30), det(40, 50), // word 1: gaps 10
		det(120, 130), det(140, 150), // word 2 after a 70-frame gap
	}
	groups := splitByGaps(dets)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if len(groups[0]) != 3 || len(groups[1]) != 2 {
		t.Errorf("group sizes %d, %d", len(groups[0]), len(groups[1]))
	}
	// Single detection: one group.
	if g := splitByGaps(dets[:1]); len(g) != 1 {
		t.Errorf("single detection grouped into %d", len(g))
	}
}

func TestRecognizePhraseEndToEnd(t *testing.T) {
	sys := newSystem(t)
	sess := participant.NewSession(participant.SixParticipants()[0], 19)
	scheme := sys.Dictionary().Scheme()
	words := []string{"the", "water"}
	var seqs []stroke.Sequence
	for _, w := range words {
		q, err := scheme.Encode(w)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, q)
	}
	perf, counts, err := sess.PerformWords(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 || counts[1] != 5 {
		t.Fatalf("counts = %v", counts)
	}
	sc := &acoustic.Scene{
		Device:     acoustic.Mate9(),
		Env:        acoustic.StandardEnvironment(acoustic.MeetingRoom),
		Reflectors: acoustic.HandReflectors(perf.Finger),
		Duration:   perf.Finger.Duration(),
		Seed:       19,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RecognizePhrase(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Words) != 2 {
		t.Fatalf("decoded %d words, want 2 (%q)", len(res.Words), res.Text())
	}
	if got := res.Text(); got != "the water" {
		t.Errorf("Text() = %q, want \"the water\"", got)
	}
}

func TestRecognizePhraseSingleWord(t *testing.T) {
	sys := newSystem(t)
	rec := recordWord(t, "good", 23)
	res, err := sys.RecognizePhrase(rec.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Words) != 1 {
		t.Fatalf("single word split into %d (%q)", len(res.Words), res.Text())
	}
	if res.Words[0].Top() != "good" {
		t.Errorf("top = %q", res.Words[0].Top())
	}
}

func TestRecognizePhraseSilence(t *testing.T) {
	sys := newSystem(t)
	sc := &acoustic.Scene{
		Device:   acoustic.Mate9(),
		Env:      acoustic.Environment{},
		Duration: 1.5,
		Seed:     2,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RecognizePhrase(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Words) != 0 || res.Text() != "" {
		t.Errorf("silence decoded to %q", res.Text())
	}
}
