package core

import (
	"math"
	"testing"

	"repro/internal/acoustic"
	"repro/internal/audio"
)

// Robustness / failure-injection suite: the system must degrade
// gracefully — returning empty results or errors, never panicking or
// hallucinating strokes — under malformed or hostile inputs.

func TestRobustnessWrongSampleRate(t *testing.T) {
	sys := newSystem(t)
	sig := &audio.Signal{Samples: make([]float64, 48000), Rate: 48000}
	if _, err := sys.RecognizeWords(sig); err == nil {
		t.Error("wrong sample rate accepted")
	}
}

func TestRobustnessTooShort(t *testing.T) {
	sys := newSystem(t)
	// Shorter than one FFT frame.
	sig := &audio.Signal{Samples: make([]float64, 4096), Rate: 44100}
	if _, err := sys.RecognizeWords(sig); err == nil {
		t.Error("sub-frame signal accepted")
	}
}

func TestRobustnessPureNoise(t *testing.T) {
	sys := newSystem(t)
	ns := audio.NewNoiseSource(77)
	sig, err := ns.White(44100, 0.3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RecognizeWords(sig)
	if err != nil {
		t.Fatal(err)
	}
	// White noise has no carrier, no static template to subtract, and no
	// coherent Doppler trace: the system must not invent long words.
	if len(res.Strokes) > 2 {
		t.Errorf("pure noise produced %d strokes", len(res.Strokes))
	}
}

func TestRobustnessSilence(t *testing.T) {
	sys := newSystem(t)
	sig := &audio.Signal{Samples: make([]float64, 44100), Rate: 44100}
	res, err := sys.RecognizeWords(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strokes) != 0 {
		t.Errorf("digital silence produced strokes: %v", res.Strokes)
	}
}

func TestRobustnessClippedSignal(t *testing.T) {
	sys := newSystem(t)
	rec := recordWord(t, "do", 5)
	// Hard-clip at 30% of full scale: harmonics everywhere, but the
	// recognizer should still survive (and usually still recognize).
	clipped := rec.Signal.Clone()
	for i, v := range clipped.Samples {
		if v > 0.3 {
			clipped.Samples[i] = 0.3
		} else if v < -0.3 {
			clipped.Samples[i] = -0.3
		}
	}
	if _, err := sys.RecognizeWords(clipped); err != nil {
		t.Fatalf("clipped signal errored: %v", err)
	}
}

func TestRobustnessDCOffset(t *testing.T) {
	sys := newSystem(t)
	rec := recordWord(t, "do", 6)
	shifted := rec.Signal.Clone()
	for i := range shifted.Samples {
		shifted.Samples[i] += 0.1
	}
	res, err := sys.RecognizeWords(shifted)
	if err != nil {
		t.Fatal(err)
	}
	// DC sits at bin 0, far outside the 19.5–20.5 kHz band: recognition
	// should be unaffected.
	if len(res.Strokes) != 2 {
		t.Errorf("DC offset broke recognition: %v", res.Strokes)
	}
}

func TestRobustnessLoudBackgroundMusic(t *testing.T) {
	sys := newSystem(t)
	rec := recordWord(t, "do", 7)
	noisy := rec.Signal.Clone()
	// A loud low/mid-frequency "music" mix far below the probe band.
	for i := range noisy.Samples {
		ti := float64(i) / 44100
		noisy.Samples[i] += 0.2*math.Sin(2*math.Pi*440*ti) +
			0.15*math.Sin(2*math.Pi*880*ti) +
			0.1*math.Sin(2*math.Pi*2093*ti)
	}
	res, err := sys.RecognizeWords(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strokes) != 2 {
		t.Errorf("out-of-band music broke recognition: got %v", res.Strokes)
	}
}

func TestRobustnessCompetingTone(t *testing.T) {
	// An interfering tone INSIDE the probe band (e.g. another EchoWrite
	// device nearby at 20.2 kHz): static in frequency, so spectral
	// subtraction should remove it like any other static component.
	sys := newSystem(t)
	rec := recordWord(t, "do", 8)
	jammed := rec.Signal.Clone()
	tone, err := audio.Tone(44100, 20200, 0.1, jammed.Duration())
	if err != nil {
		t.Fatal(err)
	}
	if err := jammed.AddInPlace(tone, 1); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RecognizeWords(jammed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strokes) != 2 {
		t.Errorf("static in-band tone broke recognition: %v", res.Strokes)
	}
}

func TestRobustnessGainVariation(t *testing.T) {
	// Normalization keeps recognition stable across moderate gain
	// changes (±6 dB). Large attenuation eventually starves the absolute
	// α energy gate — the hardware dependence the paper itself notes.
	sys := newSystem(t)
	rec := recordWord(t, "do", 9)
	for _, gain := range []float64{0.5, 1.0, 1.5} {
		scaled := rec.Signal.Clone()
		scaled.Scale(gain)
		res, err := sys.RecognizeWords(scaled)
		if err != nil {
			t.Fatalf("gain %g: %v", gain, err)
		}
		if len(res.Strokes) != 2 {
			t.Errorf("gain %g broke recognition: %v", gain, res.Strokes)
		}
	}
}

func TestRobustnessWatchFrontEnd(t *testing.T) {
	// The same word through the weaker smartwatch front-end must still
	// recognize (Fig. 11's claim).
	sys := newSystem(t)
	recW := recordWordOn(t, "do", 11, acoustic.Watch2())
	res, err := sys.RecognizeWords(recW.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strokes) != 2 {
		t.Errorf("watch front-end broke recognition: %v", res.Strokes)
	}
}
