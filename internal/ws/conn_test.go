package ws

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil/leak"
)

// TestAcceptKey pins the handshake derivation to the RFC 6455 §1.3
// worked example.
func TestAcceptKey(t *testing.T) {
	leak.Check(t)
	const key = "dGhlIHNhbXBsZSBub25jZQ=="
	const want = "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got := acceptKey(key); got != want {
		t.Errorf("acceptKey(%q) = %q, want %q", key, got, want)
	}
}

// echoServer upgrades every request and echoes data messages until the
// peer closes. The handler signals exit through done so tests can wait
// for server-side teardown before the leak check runs.
func echoServer(t *testing.T) (*httptest.Server, *sync.WaitGroup) {
	t.Helper()
	var wg sync.WaitGroup
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wg.Add(1)
		defer wg.Done()
		conn, err := Accept(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			typ, data, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(typ, data); err != nil {
				return
			}
		}
	}))
	return ts, &wg
}

// TestDialEchoRoundTrip drives the full stack — Dial handshake, masked
// client frames, fragmentation on both the small and large paths, and
// the close handshake — against an Accept-side echo loop.
func TestDialEchoRoundTrip(t *testing.T) {
	leak.Check(t)
	ts, wg := echoServer(t)
	defer ts.Close()
	defer wg.Wait()

	conn, err := Dial(ts.URL, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	big := bytes.Repeat([]byte{0xA5, 0x5A, 0x00, 0xFF}, 20000) // 80 kB: 16-bit length form
	cases := []struct {
		typ  MessageType
		data []byte
	}{
		{Text, []byte("hello stream")},
		{Binary, []byte{}},
		{Binary, big},
		{Text, []byte(strings.Repeat("é", 1000))}, // multi-byte UTF-8 survives
	}
	conn.FragmentSize = 4096 // exercise continuation reassembly server-side
	for i, c := range cases {
		if err := conn.WriteMessage(c.typ, c.data); err != nil {
			t.Fatalf("case %d write: %v", i, err)
		}
		typ, got, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("case %d read: %v", i, err)
		}
		if typ != c.typ || !bytes.Equal(got, c.data) {
			t.Fatalf("case %d echo mismatch: type %v len %d, want type %v len %d",
				i, typ, len(got), c.typ, len(c.data))
		}
	}

	// Pings are answered in-stream without surfacing as messages.
	if err := conn.WritePing([]byte("beat")); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(Text, []byte("after ping")); err != nil {
		t.Fatal(err)
	}
	if _, got, err := conn.ReadMessage(); err != nil || string(got) != "after ping" {
		t.Fatalf("read after ping = %q, %v", got, err)
	}

	if err := conn.CloseHandshake(StatusNormalClosure, "done", time.Second); err != nil {
		t.Fatalf("close handshake: %v", err)
	}
}

// TestCloseHandshakeCodeRoundTrip checks the peer sees the code and
// reason we sent, and that data writes after close are refused.
func TestCloseHandshakeCodeRoundTrip(t *testing.T) {
	leak.Check(t)
	ts, wg := echoServer(t)
	defer ts.Close()
	defer wg.Wait()

	conn, err := Dial(ts.URL, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.WriteClose(StatusGoingAway, "moving on"); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(Text, []byte("x")); !errors.Is(err, ErrCloseSent) {
		t.Errorf("write after close = %v, want ErrCloseSent", err)
	}
	_, _, err = conn.ReadMessage()
	var ce *CloseError
	if !errors.As(err, &ce) {
		t.Fatalf("read after close = %v, want *CloseError", err)
	}
	if ce.Code != StatusGoingAway {
		t.Errorf("echoed close code = %d, want %d", ce.Code, StatusGoingAway)
	}
}

// TestAcceptRejectsBadHandshakes covers the refusal paths with their
// HTTP statuses.
func TestAcceptRejectsBadHandshakes(t *testing.T) {
	leak.Check(t)
	ts, wg := echoServer(t)
	defer ts.Close()
	defer wg.Wait()

	do := func(method string, hdr map[string]string) int {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	upgrade := map[string]string{
		"Connection":            "Upgrade",
		"Upgrade":               "websocket",
		"Sec-WebSocket-Version": "13",
		"Sec-WebSocket-Key":     "AAAAAAAAAAAAAAAAAAAAAA==",
	}
	if got := do(http.MethodPost, upgrade); got != http.StatusMethodNotAllowed {
		t.Errorf("POST upgrade status = %d, want 405", got)
	}
	if got := do(http.MethodGet, nil); got != http.StatusBadRequest {
		t.Errorf("plain GET status = %d, want 400", got)
	}
	old := map[string]string{}
	for k, v := range upgrade {
		old[k] = v
	}
	old["Sec-WebSocket-Version"] = "8"
	if got := do(http.MethodGet, old); got != http.StatusUpgradeRequired {
		t.Errorf("old version status = %d, want 426", got)
	}
	bad := map[string]string{}
	for k, v := range upgrade {
		bad[k] = v
	}
	bad["Sec-WebSocket-Key"] = "not base64!"
	if got := do(http.MethodGet, bad); got != http.StatusBadRequest {
		t.Errorf("bad key status = %d, want 400", got)
	}
}

// pipeConns builds a connected client/server Conn pair over net.Pipe,
// bypassing the HTTP handshake so frame-level behavior can be tested
// in isolation.
func pipeConns() (client, server *Conn) {
	cc, sc := net.Pipe()
	client = newConn(cc, bufio.NewReader(cc), bufio.NewWriter(cc), true)
	server = newConn(sc, bufio.NewReader(sc), bufio.NewWriter(sc), false)
	return client, server
}

// TestMaskingDirection: a server must reject unmasked client frames and
// a client must reject masked server frames.
func TestMaskingDirection(t *testing.T) {
	leak.Check(t)
	t.Run("unmasked-to-server", func(t *testing.T) {
		client, server := pipeConns()
		defer client.Close()
		defer server.Close()
		client.client = false // misbehave: send unmasked
		errCh := make(chan error, 1)
		go func() { errCh <- client.WriteMessage(Text, []byte("hi")) }()
		_, _, err := server.ReadMessage()
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("server read = %v, want ErrProtocol", err)
		}
		<-errCh
	})
	t.Run("masked-to-client", func(t *testing.T) {
		client, server := pipeConns()
		defer client.Close()
		defer server.Close()
		server.client = true // misbehave: send masked
		errCh := make(chan error, 1)
		go func() { errCh <- server.WriteMessage(Text, []byte("hi")) }()
		_, _, err := client.ReadMessage()
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("client read = %v, want ErrProtocol", err)
		}
		<-errCh
	})
}

// TestMaxPayloadCaps: oversized single frames and oversized reassembled
// messages both fail with ErrTooLarge, before unbounded buffering.
func TestMaxPayloadCaps(t *testing.T) {
	leak.Check(t)
	t.Run("single-frame", func(t *testing.T) {
		client, server := pipeConns()
		defer client.Close()
		defer server.Close()
		server.MaxPayload = 64
		errCh := make(chan error, 1)
		go func() { errCh <- client.WriteMessage(Binary, make([]byte, 65)) }()
		_, _, err := server.ReadMessage()
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("read = %v, want ErrTooLarge", err)
		}
		<-errCh // the pipe write may observe the teardown; only sequencing matters
	})
	t.Run("fragmented-message", func(t *testing.T) {
		client, server := pipeConns()
		defer client.Close()
		defer server.Close()
		server.MaxPayload = 100
		client.FragmentSize = 60 // two 60/40 frames: each under cap, total over
		errCh := make(chan error, 1)
		go func() { errCh <- client.WriteMessage(Binary, make([]byte, 120)) }()
		_, _, err := server.ReadMessage()
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("read = %v, want ErrTooLarge", err)
		}
		<-errCh
	})
}

// TestContinuationStateMachine: stray continuations and interleaved
// data frames are protocol errors.
func TestContinuationStateMachine(t *testing.T) {
	leak.Check(t)
	t.Run("bare-continuation", func(t *testing.T) {
		client, server := pipeConns()
		defer client.Close()
		defer server.Close()
		errCh := make(chan error, 1)
		go func() {
			client.wmu.Lock()
			defer client.wmu.Unlock()
			errCh <- client.writeFrameLocked(opContinuation, true, []byte("tail"))
		}()
		_, _, err := server.ReadMessage()
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("read = %v, want ErrProtocol", err)
		}
		<-errCh
	})
	t.Run("data-inside-fragmented", func(t *testing.T) {
		client, server := pipeConns()
		defer client.Close()
		defer server.Close()
		errCh := make(chan error, 1)
		go func() {
			client.wmu.Lock()
			defer client.wmu.Unlock()
			if err := client.writeFrameLocked(opText, false, []byte("first")); err != nil {
				errCh <- err
				return
			}
			errCh <- client.writeFrameLocked(opText, true, []byte("second"))
		}()
		_, _, err := server.ReadMessage()
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("read = %v, want ErrProtocol", err)
		}
		<-errCh
	})
}

// TestTextMessageUTF8: invalid UTF-8 in a completed text message is a
// protocol error (RFC 6455 §8.1).
func TestTextMessageUTF8(t *testing.T) {
	leak.Check(t)
	client, server := pipeConns()
	defer client.Close()
	defer server.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- client.WriteMessage(Text, []byte{0xFF, 0xFE, 0xFD}) }()
	_, _, err := server.ReadMessage()
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("read = %v, want ErrProtocol", err)
	}
	<-errCh
}

// TestOneByteClosePayload: a close frame with a single payload byte
// cannot carry a status code and must be rejected.
func TestOneByteClosePayload(t *testing.T) {
	leak.Check(t)
	client, server := pipeConns()
	defer client.Close()
	defer server.Close()
	errCh := make(chan error, 1)
	go func() {
		client.wmu.Lock()
		defer client.wmu.Unlock()
		errCh <- client.writeFrameLocked(opClose, true, []byte{0x03})
	}()
	_, _, err := server.ReadMessage()
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("read = %v, want ErrProtocol", err)
	}
	<-errCh
}
