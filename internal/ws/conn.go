// Package ws is a minimal pure-stdlib WebSocket (RFC 6455)
// implementation, built for the serving tier's persistent duplex
// streaming ingest: the HTTP/1.1 Upgrade handshake on both ends
// (Accept for servers, Dial for clients), a frame reader/writer with
// client-side masking, fragmentation and control frames, and a
// close-handshake state machine.
//
// The surface is deliberately small — text/binary messages, ping/pong,
// clean closes, per-connection payload caps — because the EchoWrite
// stream protocol needs nothing more, and every line here is on the
// untrusted-input path that FuzzFrameRead hammers.
package ws

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
	"unicode/utf8"
)

// MessageType distinguishes the two data frame kinds.
type MessageType int

const (
	// Text messages carry UTF-8 payloads (enforced on read).
	Text MessageType = opText
	// Binary messages carry arbitrary bytes.
	Binary MessageType = opBinary
)

// Close status codes (RFC 6455 §7.4.1).
const (
	StatusNormalClosure   = 1000
	StatusGoingAway       = 1001
	StatusProtocolError   = 1002
	StatusUnsupportedData = 1003
	StatusNoStatus        = 1005 // never sent on the wire
	StatusInvalidPayload  = 1007
	StatusPolicyViolation = 1008
	StatusMessageTooBig   = 1009
	StatusInternalError   = 1011
)

// DefaultMaxPayload caps frames and reassembled messages when
// Conn.MaxPayload is zero (1 MiB — matching the order of the serving
// tier's per-feed chunk caps).
const DefaultMaxPayload = 1 << 20

// ErrCloseSent is returned by writes attempted after the close frame
// went out: RFC 6455 forbids data frames after close.
var ErrCloseSent = errors.New("ws: close frame already sent")

// CloseError surfaces the peer's close frame from ReadMessage. Code is
// StatusNoStatus when the close payload was empty.
type CloseError struct {
	Code   int
	Reason string
}

func (e *CloseError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("ws: peer closed connection (status %d)", e.Code)
	}
	return fmt.Sprintf("ws: peer closed connection (status %d: %s)", e.Code, e.Reason)
}

// Conn is one WebSocket connection. Reads must come from a single
// goroutine; writes are mutex-serialized, so any number of goroutines
// (an event pump, a keepalive ticker, the reader auto-replying to
// pings) may write concurrently.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // mask outgoing frames, reject masked incoming ones

	// MaxPayload caps a single frame's declared payload and a
	// fragmented message's reassembled size (0 = DefaultMaxPayload).
	// Set before the first ReadMessage; oversized input fails with
	// ErrTooLarge before any allocation.
	MaxPayload int64
	// FragmentSize, when positive, splits outgoing data messages into
	// continuation frames of at most this many payload bytes. Zero
	// writes every message as a single frame. Set before first use.
	FragmentSize int

	wmu       sync.Mutex
	bw        *bufio.Writer // guarded by wmu
	scratch   []byte        // guarded by wmu
	sentClose bool          // guarded by wmu

	// Read-side state; single-reader by contract, so unguarded.
	inMessage bool
}

// newConn wraps an upgraded network connection. br already holds any
// bytes buffered past the handshake.
func newConn(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, client bool) *Conn {
	return &Conn{conn: nc, br: br, bw: bw, client: client}
}

// maxPayload resolves the incoming payload cap.
func (c *Conn) maxPayload() int64 {
	if c.MaxPayload > 0 {
		return c.MaxPayload
	}
	return DefaultMaxPayload
}

// ReadMessage blocks for the next complete data message, reassembling
// fragments and servicing control frames in between: pings are answered
// with pongs carrying the same payload, pongs are swallowed, and a
// close frame is echoed (completing the close handshake) and surfaced
// as a *CloseError.
func (c *Conn) ReadMessage() (MessageType, []byte, error) {
	var (
		typ MessageType
		buf []byte
	)
	maxP := c.maxPayload()
	for {
		f, err := readFrame(c.br, maxP, !c.client)
		if err != nil {
			return 0, nil, err
		}
		switch f.opcode {
		case opPing:
			if err := c.writeControl(opPong, f.payload); err != nil {
				return 0, nil, err
			}
			continue
		case opPong:
			continue
		case opClose:
			code, reason, err := parseClosePayload(f.payload)
			if err != nil {
				return 0, nil, err
			}
			// Echo the close once so the peer's handshake completes even
			// when we never initiated one; WriteClose is a no-op if our
			// side already sent close.
			echo := code
			if echo == StatusNoStatus {
				echo = StatusNormalClosure
			}
			_ = c.WriteClose(echo, "")
			return 0, nil, &CloseError{Code: code, Reason: reason}
		case opContinuation:
			if !c.inMessage {
				return 0, nil, fmt.Errorf("%w: continuation frame outside a message", ErrProtocol)
			}
			if int64(len(buf))+int64(len(f.payload)) > maxP {
				return 0, nil, fmt.Errorf("%w: fragmented message over %d bytes", ErrTooLarge, maxP)
			}
			buf = append(buf, f.payload...)
		default: // opText, opBinary
			if c.inMessage {
				return 0, nil, fmt.Errorf("%w: new data frame inside a fragmented message", ErrProtocol)
			}
			c.inMessage = true
			typ = MessageType(f.opcode)
			buf = f.payload
		}
		if f.fin {
			c.inMessage = false
			if typ == Text && !utf8.Valid(buf) {
				return 0, nil, fmt.Errorf("%w: invalid UTF-8 in text message", ErrProtocol)
			}
			return typ, buf, nil
		}
	}
}

// parseClosePayload splits a close frame body into status code and
// reason. An empty body is legal (StatusNoStatus); a 1-byte body is a
// protocol error, as is a non-UTF-8 reason.
func parseClosePayload(p []byte) (int, string, error) {
	switch {
	case len(p) == 0:
		return StatusNoStatus, "", nil
	case len(p) == 1:
		return 0, "", fmt.Errorf("%w: 1-byte close payload", ErrProtocol)
	}
	code := int(p[0])<<8 | int(p[1])
	reason := p[2:]
	if !utf8.Valid(reason) {
		return 0, "", fmt.Errorf("%w: invalid UTF-8 in close reason", ErrProtocol)
	}
	return code, string(reason), nil
}

// WriteMessage writes one data message, fragmented per FragmentSize.
func (c *Conn) WriteMessage(typ MessageType, data []byte) error {
	if typ != Text && typ != Binary {
		return fmt.Errorf("ws: invalid message type %d", typ)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.sentClose {
		return ErrCloseSent
	}
	frag := c.FragmentSize
	if frag <= 0 || frag >= len(data) || len(data) == 0 {
		return c.writeFrameLocked(byte(typ), true, data)
	}
	opcode := byte(typ)
	for off := 0; off < len(data); off += frag {
		end := min(off+frag, len(data))
		fin := end == len(data)
		if err := c.writeFrameLocked(opcode, fin, data[off:end]); err != nil {
			return err
		}
		opcode = opContinuation
	}
	return nil
}

// WritePing sends a ping control frame (payload ≤ 125 bytes).
func (c *Conn) WritePing(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.sentClose {
		return ErrCloseSent
	}
	return c.writeFrameLocked(opPing, true, payload)
}

// writeControl sends a control frame, silently skipping it if the close
// frame is already out (a pong racing a close is not an error).
func (c *Conn) writeControl(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.sentClose {
		return nil
	}
	return c.writeFrameLocked(opcode, true, payload)
}

// WriteClose sends the close frame once; later calls (and later data
// writes) are no-ops per the close-handshake state machine. It does not
// close the underlying connection — pair with reading until CloseError
// (or use CloseHandshake).
func (c *Conn) WriteClose(code int, reason string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.sentClose {
		return nil
	}
	payload := make([]byte, 2, 2+len(reason))
	payload[0], payload[1] = byte(code>>8), byte(code)
	payload = append(payload, reason...)
	if len(payload) > maxControlPayload {
		payload = payload[:maxControlPayload]
	}
	err := c.writeFrameLocked(opClose, true, payload)
	c.sentClose = true
	return err
}

// writeFrameLocked writes one frame through the buffered writer and
// flushes. Callers hold wmu.
//
// ew:holds c.wmu — every write funnels through here with the lock held.
func (c *Conn) writeFrameLocked(opcode byte, fin bool, payload []byte) error {
	var err error
	c.scratch, err = writeFrame(c.bw, opcode, fin, c.client, payload, c.scratch)
	if err != nil {
		return err
	}
	return c.bw.Flush()
}

// CloseHandshake performs an orderly shutdown: send the close frame,
// read (discarding data) until the peer's close frame or an error, then
// close the underlying connection. deadline bounds the drain so a
// vanished peer cannot park the caller.
func (c *Conn) CloseHandshake(code int, reason string, deadline time.Duration) error {
	werr := c.WriteClose(code, reason)
	_ = c.conn.SetReadDeadline(time.Now().Add(deadline))
	for {
		if _, _, err := c.ReadMessage(); err != nil {
			break // CloseError on a clean handshake; any error ends the drain
		}
	}
	cerr := c.conn.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// Close tears down the underlying connection immediately, without a
// close handshake. Safe to call concurrently with reads and writes —
// both sides then fail fast, which is how owners unwind their pump and
// reader goroutines.
func (c *Conn) Close() error { return c.conn.Close() }

// SetReadDeadline bounds future reads (zero time clears it).
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetWriteDeadline bounds future writes (zero time clears it).
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }
