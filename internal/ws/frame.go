package ws

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame opcodes (RFC 6455 §5.2).
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// maxControlPayload is the RFC 6455 §5.5 bound on a control frame's
// payload (the length must fit the 7-bit short form).
const maxControlPayload = 125

// maxHeaderBytes is the largest possible frame header: 2 fixed bytes,
// 8 extended-length bytes, 4 masking-key bytes.
const maxHeaderBytes = 14

// ErrProtocol marks a peer violation of RFC 6455 framing: reserved
// bits, bad opcodes, non-minimal lengths, wrong masking for the
// direction, malformed close payloads. Connections that see it should
// close with StatusProtocolError.
var ErrProtocol = errors.New("ws: protocol error")

// ErrTooLarge means a frame (or reassembled message) exceeds the
// connection's payload cap. The peer gets StatusMessageTooBig. The cap
// is enforced before the payload is read, so a hostile 2⁶³-byte length
// header never causes an allocation.
var ErrTooLarge = errors.New("ws: payload over cap")

// frame is one parsed wire frame, payload already unmasked.
type frame struct {
	fin     bool
	opcode  byte
	payload []byte
}

// isControl reports whether an opcode is a control frame (close, ping,
// pong — the 0x8..0xF range).
func isControl(opcode byte) bool { return opcode&0x8 != 0 }

// readFrame parses one frame from br. maxPayload bounds the declared
// payload length before any allocation happens; requireMask selects the
// direction's masking rule (servers require masked client frames,
// clients reject masked server frames). Returned payloads are unmasked.
func readFrame(br *bufio.Reader, maxPayload int64, requireMask bool) (frame, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return frame{}, err
	}
	if rsv := hdr[0] & 0x70; rsv != 0 {
		return frame{}, fmt.Errorf("%w: nonzero RSV bits %#02x (no extensions negotiated)", ErrProtocol, rsv)
	}
	f := frame{fin: hdr[0]&0x80 != 0, opcode: hdr[0] & 0x0F}
	switch f.opcode {
	case opContinuation, opText, opBinary, opClose, opPing, opPong:
	default:
		return frame{}, fmt.Errorf("%w: reserved opcode %#x", ErrProtocol, f.opcode)
	}

	masked := hdr[1]&0x80 != 0
	if masked != requireMask {
		if requireMask {
			return frame{}, fmt.Errorf("%w: unmasked client frame", ErrProtocol)
		}
		return frame{}, fmt.Errorf("%w: masked server frame", ErrProtocol)
	}

	n := int64(hdr[1] & 0x7F)
	switch n {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return frame{}, err
		}
		n = int64(binary.BigEndian.Uint16(ext[:]))
		if n < 126 {
			return frame{}, fmt.Errorf("%w: non-minimal 16-bit length %d", ErrProtocol, n)
		}
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return frame{}, err
		}
		v := binary.BigEndian.Uint64(ext[:])
		if v>>63 != 0 {
			return frame{}, fmt.Errorf("%w: 64-bit length with the high bit set", ErrProtocol)
		}
		n = int64(v)
		if n < 1<<16 {
			return frame{}, fmt.Errorf("%w: non-minimal 64-bit length %d", ErrProtocol, n)
		}
	}
	if isControl(f.opcode) {
		if !f.fin {
			return frame{}, fmt.Errorf("%w: fragmented control frame", ErrProtocol)
		}
		if n > maxControlPayload {
			return frame{}, fmt.Errorf("%w: %d-byte control payload (max %d)", ErrProtocol, n, maxControlPayload)
		}
	}
	if n > maxPayload {
		return frame{}, fmt.Errorf("%w: %d-byte frame (cap %d)", ErrTooLarge, n, maxPayload)
	}

	var key [4]byte
	if masked {
		if _, err := io.ReadFull(br, key[:]); err != nil {
			return frame{}, err
		}
	}
	f.payload = make([]byte, n)
	if _, err := io.ReadFull(br, f.payload); err != nil {
		return frame{}, err
	}
	if masked {
		maskBytes(key, f.payload)
	}
	return f, nil
}

// maskBytes XORs p in place with the repeating 4-byte key (RFC 6455
// §5.3); masking is an involution, so the same call masks and unmasks.
func maskBytes(key [4]byte, p []byte) {
	for i := range p {
		p[i] ^= key[i&3]
	}
}

// appendFrameHeader renders a frame header for an opcode/length pair,
// returning the extended buf. mask carries the masking key when masked
// is set.
func appendFrameHeader(buf []byte, opcode byte, fin, masked bool, n int, mask [4]byte) []byte {
	b0 := opcode
	if fin {
		b0 |= 0x80
	}
	buf = append(buf, b0)
	var b1 byte
	if masked {
		b1 = 0x80
	}
	switch {
	case n <= 125:
		buf = append(buf, b1|byte(n))
	case n < 1<<16:
		buf = append(buf, b1|126, byte(n>>8), byte(n))
	default:
		buf = append(buf, b1|127)
		buf = binary.BigEndian.AppendUint64(buf, uint64(n))
	}
	if masked {
		buf = append(buf, mask[:]...)
	}
	return buf
}

// writeFrame writes one complete frame to w. Client-side frames are
// masked with a fresh random key into scratch so payload is never
// modified; scratch is reused across calls and returned (possibly
// grown).
func writeFrame(w io.Writer, opcode byte, fin, masked bool, payload, scratch []byte) ([]byte, error) {
	var key [4]byte
	if masked {
		if _, err := rand.Read(key[:]); err != nil {
			return scratch, fmt.Errorf("ws: masking key: %w", err)
		}
	}
	scratch = appendFrameHeader(scratch[:0], opcode, fin, masked, len(payload), key)
	if masked {
		scratch = append(scratch, payload...)
		maskBytes(key, scratch[len(scratch)-len(payload):])
		_, err := w.Write(scratch)
		return scratch, err
	}
	if _, err := w.Write(scratch); err != nil {
		return scratch, err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return scratch, err
		}
	}
	return scratch, nil
}
