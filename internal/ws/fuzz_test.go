package ws

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/testutil/leak"
)

// fuzzMaxPayload is the frame cap under fuzzing — small enough that an
// over-allocation bug (trusting a hostile length header) is
// immediately visible as a returned payload larger than the cap.
const fuzzMaxPayload = 1 << 16

// clientFrame builds a masked frame the way a well-behaved client
// would, for seeding the corpus.
func clientFrame(t *testing.F, opcode byte, fin bool, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, opcode, fin, true, payload, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFrameRead hammers the frame parser with arbitrary bytes in both
// masking directions. The parser must never panic, never return a
// payload above the cap (the over-allocation guard), and classify
// every failure as either a typed protocol/size violation or a clean
// truncation error.
func FuzzFrameRead(f *testing.F) {
	leak.Check(f)
	f.Add([]byte{})
	f.Add(clientFrame(f, opText, true, []byte("hello")))
	f.Add(clientFrame(f, opBinary, true, make([]byte, 300)))   // 16-bit length form
	f.Add(clientFrame(f, opBinary, false, []byte("fragment"))) // non-FIN data frame
	f.Add(clientFrame(f, opPing, true, []byte("beat")))
	f.Add(clientFrame(f, opClose, true, []byte{0x03, 0xE8}))
	f.Add([]byte{0x81, 0x05, 'h'})                               // truncated unmasked text
	f.Add([]byte{0x91, 0x80, 0, 0, 0, 0})                        // RSV bit set
	f.Add([]byte{0x83, 0x80, 0, 0, 0, 0})                        // reserved opcode 0x3
	f.Add([]byte{0x82, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, //
		0xFF, 0xFF, 0, 0, 0, 0}) // 2⁶⁴-1 length
	f.Add([]byte{0x82, 0xFE, 0x00, 0x10, 0, 0, 0, 0}) // non-minimal 16-bit length
	f.Add([]byte{0x88, 0x81, 0, 0, 0, 0, 0x03})       // 1-byte close payload
	f.Add([]byte{0x89, 0xFE, 0x00, 0xFF})             // oversized control frame
	huge := []byte{0x82, 0xFF}
	huge = binary.BigEndian.AppendUint64(huge, fuzzMaxPayload+1)
	f.Add(append(huge, 0, 0, 0, 0)) // one byte over the cap

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, requireMask := range []bool{true, false} {
			br := bufio.NewReader(bytes.NewReader(data))
			fr, err := readFrame(br, fuzzMaxPayload, requireMask)
			if err != nil {
				// Every failure must be a typed violation or a clean
				// truncation — anything else is an unclassified escape.
				if !errors.Is(err, ErrProtocol) && !errors.Is(err, ErrTooLarge) &&
					!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unclassified parse error: %v", err)
				}
				continue
			}
			if int64(len(fr.payload)) > fuzzMaxPayload {
				t.Fatalf("payload %d bytes exceeds the %d cap", len(fr.payload), fuzzMaxPayload)
			}
			if isControl(fr.opcode) && (len(fr.payload) > maxControlPayload || !fr.fin) {
				t.Fatalf("control frame violating §5.5 passed the parser: fin=%v len=%d",
					fr.fin, len(fr.payload))
			}
		}
	})
}
