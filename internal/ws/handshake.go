package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// acceptGUID is the fixed RFC 6455 §1.3 key-derivation constant.
const acceptGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// acceptKey derives the Sec-WebSocket-Accept value for a client key:
// base64(SHA-1(key + GUID)).
func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + acceptGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// headerHasToken reports whether a comma-separated header contains a
// token, case-insensitively (Connection is a token list: a browser may
// send "keep-alive, Upgrade").
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Accept upgrades an HTTP request to a WebSocket connection: it
// validates the handshake headers, hijacks the connection, clears any
// per-connection deadlines the http.Server armed (IdleTimeout and
// ReadTimeout must not kill a long-lived stream), and writes the 101
// response. On failure the HTTP error response has already been
// written; the caller just returns.
func Accept(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket handshake requires GET", http.StatusMethodNotAllowed)
		return nil, fmt.Errorf("ws: handshake method %s", r.Method)
	}
	if !headerHasToken(r.Header, "Connection", "Upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "not a websocket upgrade request", http.StatusBadRequest)
		return nil, fmt.Errorf("ws: missing Upgrade/Connection headers")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported websocket version", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("ws: unsupported version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if raw, err := base64.StdEncoding.DecodeString(key); err != nil || len(raw) != 16 {
		http.Error(w, "malformed Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, fmt.Errorf("ws: malformed Sec-WebSocket-Key %q", key)
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
		return nil, fmt.Errorf("ws: response writer is not a Hijacker")
	}
	nc, rw, err := hj.Hijack()
	if err != nil {
		http.Error(w, "hijack failed", http.StatusInternalServerError)
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	// The server may have armed deadlines on this connection
	// (ReadTimeout, or IdleTimeout between keep-alive requests); a
	// persistent stream must outlive them.
	_ = nc.SetDeadline(time.Time{})

	if _, err := rw.WriteString("HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"); err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: write 101: %w", err)
	}
	if err := rw.Flush(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: flush 101: %w", err)
	}
	return newConn(nc, rw.Reader, rw.Writer, false), nil
}

// Dial opens a client WebSocket connection to rawURL ("ws://host/path"
// or "http://host/path" — TLS is out of scope for the loopback load
// and test paths this client serves). timeout bounds the TCP connect
// and the handshake; the established connection has no deadlines.
func Dial(rawURL string, timeout time.Duration) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("ws: dial %q: %w", rawURL, err)
	}
	switch u.Scheme {
	case "ws", "http":
	default:
		return nil, fmt.Errorf("ws: dial %q: unsupported scheme %q", rawURL, u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}

	var keyRaw [16]byte
	if _, err := rand.Read(keyRaw[:]); err != nil {
		return nil, fmt.Errorf("ws: nonce: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(keyRaw[:])

	nc, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, fmt.Errorf("ws: dial %s: %w", host, err)
	}
	if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
		nc.Close()
		return nil, err
	}

	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := nc.Write([]byte(req)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake write: %w", err)
	}

	br := bufio.NewReader(nc)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake response: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake rejected: %s", resp.Status)
	}
	if !strings.EqualFold(resp.Header.Get("Upgrade"), "websocket") ||
		!headerHasToken(resp.Header, "Connection", "Upgrade") {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake response missing upgrade headers")
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		nc.Close()
		return nil, fmt.Errorf("ws: Sec-WebSocket-Accept mismatch (got %q)", got)
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		nc.Close()
		return nil, err
	}
	return newConn(nc, br, bufio.NewWriter(nc), true), nil
}
