# Tier-1 verification plus the race gate for the concurrent serving
# code. `make ci` is what every PR must keep green.
GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The serve and pipeline packages contain the concurrency-sensitive
# code (session manager, worker pool, pooled streams); race-check them
# on every change.
race:
	$(GO) test -race ./internal/serve/... ./internal/pipeline/...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
