# Tier-1 verification plus the race and lint gates for the concurrent
# serving code. `make ci` is what every PR must keep green.
GO ?= go

.PHONY: ci vet lint lint-fast build test race fuzz-smoke metricsz-smoke ws-smoke bench-smoke bench-baseline batch-smoke stress bench soak-smoke soak

ci: vet lint build test race fuzz-smoke metricsz-smoke ws-smoke bench-smoke batch-smoke soak-smoke

vet:
	$(GO) vet ./...

# The project-specific analyzer suite (internal/analysis, driven by
# cmd/ewvet): lock discipline, guarded fields, float equality, hot-path
# allocations, goroutine lifecycles, plus the interprocedural layer —
# call-graph construction, hot-path propagation, and global lock-order
# deadlock detection. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/ewvet .

# Inner-loop variant: intra-procedural analyzers only, skipping the
# module-wide call-graph construction the interprocedural layer needs.
lint-fast:
	$(GO) run ./cmd/ewvet -fast .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the whole module. The serve tree additionally runs at
# -cpu=1,4 so shard scheduling (sharded session manager, worker pools,
# pooled streams) is exercised both starved and parallel.
race:
	$(GO) test -race ./...
	$(GO) test -race -cpu=1,4 ./internal/serve/...

# Scrape GET /metricsz on a live sharded service under real traffic and
# strictly re-parse the Prometheus exposition (names, HELP/TYPE order,
# histogram cumulativity), cross-checking every counter against /statsz.
metricsz-smoke:
	$(GO) test -run 'TestMetricsz' -count=1 ./internal/serve

# A short ewload run over the /v1/stream WebSocket path, gated on the
# error rate and on a strict /metricsz scrape: the duplex ingest must
# deliver incremental detections under concurrency, end to end.
ws-smoke:
	$(GO) run ./cmd/ewload -ws -writers 8 -signals 2 -max-error-rate 0.01 -metricsz

# A 10-second native-fuzz smoke of the streaming chunking invariance;
# regressions in Stream.Feed surface here before the long fuzzers run.
# The 5-second WebSocket frame-parser fuzz guards the untrusted-input
# path of the duplex ingest the same way.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzStreamFeed -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzFrameRead -fuzztime 5s ./internal/ws
	$(GO) test -run '^$$' -fuzz FuzzBandTransform -fuzztime 5s ./internal/dsp

# The spectral-engine benchmarks the serving path depends on, checked
# against the committed baseline (BENCH_baseline.json): >20% ns/op
# regression or any allocs/op change fails the build. Three short counts
# per benchmark; ewbenchgate gates on the per-benchmark minimum so shared
# -machine noise cannot fail a healthy build.
BENCH_SMOKE = { $(GO) test -run '^$$' -bench 'BenchmarkSTFTCompute|BenchmarkSTFTBatch' -benchmem -benchtime 0.3s -count 3 ./internal/dsp && \
	$(GO) test -run '^$$' -bench 'BenchmarkStreamFeed1024$$' -benchmem -benchtime 0.3s -count 3 .; }

bench-smoke:
	$(BENCH_SMOKE) | $(GO) run ./cmd/ewbenchgate

# Refresh the committed baseline after a deliberate performance change;
# the baseline diff should land in the same commit as its cause.
bench-baseline:
	$(BENCH_SMOKE) | $(GO) run ./cmd/ewbenchgate -update

# End-to-end smoke of the batch-collector ingest path: the smoke
# scenario matrix replayed with the per-shard STFT batch collectors
# enabled, both ingest phases held to the same /metricsz bands as
# soak-smoke. Detections must match the per-worker path bit for bit
# (the stress equivalence test pins that); this target proves the
# batched service also holds the health bands under real recorded
# traffic.
batch-smoke:
	$(GO) run ./cmd/ewload -scenario smoke -soak 2s -writers 4 -stft-batch 16

# The long-running adversarial soak: the stress suite with its goroutine
# and iteration counts multiplied (see internal/serve/stress).
stress:
	EW_STRESS=long $(GO) test -race -v -timeout 30m ./internal/serve/stress/

# Scenario-matrix replay smoke: record (or reuse) the smoke matrix's
# traces and soak both ingest paths for 2 s each, holding /metricsz to
# the health bands. EW_SOAK=long gears the per-phase duration ×10 — the
# `soak` target below is the full matrix at that length.
soak-smoke:
	$(GO) run ./cmd/ewload -scenario smoke -soak 2s -writers 4

soak:
	EW_SOAK=long $(GO) run ./cmd/ewload -scenario all -soak 30s

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
