# Tier-1 verification plus the race gate for the concurrent serving
# code. `make ci` is what every PR must keep green.
GO ?= go

.PHONY: ci vet build test race fuzz-smoke stress bench

ci: vet build test race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The serve and pipeline packages contain the concurrency-sensitive
# code (sharded session manager, worker pools, pooled streams);
# race-check them on every change. The serve tree additionally runs at
# -cpu=1,4 so shard scheduling is exercised both starved and parallel.
race:
	$(GO) test -race -cpu=1,4 ./internal/serve/...
	$(GO) test -race ./internal/pipeline/...

# A 10-second native-fuzz smoke of the streaming chunking invariance;
# regressions in Stream.Feed surface here before the long fuzzers run.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzStreamFeed -fuzztime 10s ./internal/pipeline

# The long-running adversarial soak: the stress suite with its goroutine
# and iteration counts multiplied (see internal/serve/stress).
stress:
	EW_STRESS=long $(GO) test -race -v -timeout 30m ./internal/serve/stress/

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
