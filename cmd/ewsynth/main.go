// Command ewsynth synthesizes the microphone recording of a stroke or a
// word being written in the air and saves it as a 16-bit mono WAV file —
// useful for inspecting the simulated signals in any audio tool.
//
//	ewsynth -word water -env lab -o water.wav
//	ewsynth -stroke S4 -o s4.wav
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/capture"
	"repro/internal/participant"
	"repro/internal/stroke"
)

func main() {
	var (
		word   = flag.String("word", "", "word to write (letters only)")
		st     = flag.String("stroke", "", "single stroke to write (S1..S6)")
		out    = flag.String("o", "echowrite.wav", "output WAV path")
		env    = flag.String("env", "meeting", "environment: meeting, lab, resting")
		part   = flag.Int("participant", 1, "participant model 1..6")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		silent = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()
	if err := run(*word, *st, *out, *env, *part, *seed, *silent); err != nil {
		fmt.Fprintln(os.Stderr, "ewsynth:", err)
		os.Exit(1)
	}
}

func run(word, strokeName, out, envName string, part int, seed uint64, silent bool) error {
	if (word == "") == (strokeName == "") {
		return fmt.Errorf("specify exactly one of -word or -stroke")
	}
	var env acoustic.Environment
	switch envName {
	case "meeting":
		env = acoustic.StandardEnvironment(acoustic.MeetingRoom)
	case "lab":
		env = acoustic.StandardEnvironment(acoustic.LabArea)
	case "resting":
		env = acoustic.StandardEnvironment(acoustic.RestingZone)
	default:
		return fmt.Errorf("unknown environment %q", envName)
	}
	roster := participant.SixParticipants()
	if part < 1 || part > len(roster) {
		return fmt.Errorf("participant must be 1..%d", len(roster))
	}
	sess := participant.NewSession(roster[part-1], seed)

	var (
		rec *capture.Recording
		err error
	)
	if word != "" {
		rec, err = capture.PerformWord(sess, stroke.DefaultScheme(), word, acoustic.Mate9(), env, seed)
	} else {
		var seq stroke.Sequence
		seq, err = stroke.ParseSequenceKey(map[string]string{
			"S1": "1", "S2": "2", "S3": "3", "S4": "4", "S5": "5", "S6": "6",
		}[strokeName])
		if err != nil || len(seq) == 0 {
			return fmt.Errorf("unknown stroke %q (want S1..S6)", strokeName)
		}
		rec, err = capture.Perform(sess, seq, acoustic.Mate9(), env, seed)
	}
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return fmt.Errorf("creating %s: %w", out, err)
	}
	defer f.Close()
	if err := audio.EncodeWAV(f, rec.Signal); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", out, err)
	}
	if !silent {
		fmt.Printf("wrote %s: %.2f s at %.0f Hz, %d ground-truth strokes\n",
			out, rec.Signal.Duration(), rec.Signal.Rate, len(rec.Performance.Spans))
		for _, sp := range rec.Performance.Spans {
			fmt.Printf("  %v at [%.2f, %.2f] s\n", sp.Stroke, sp.Start, sp.End)
		}
	}
	return nil
}
