// Command ewspec renders the paper's Fig. 8 pipeline stages as PNG
// images: the raw band-cropped spectrogram, the denoised spectrogram, the
// binarized image, and the extracted 1-D Doppler profile, for a simulated
// writing of a stroke or a word.
//
//	ewspec -word water -o out/
//	ewspec -stroke S5 -env resting -o out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/acoustic"
	"repro/internal/calibrate"
	"repro/internal/capture"
	"repro/internal/imgproc"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/stroke"
)

func main() {
	var (
		word   = flag.String("word", "", "word to write")
		st     = flag.String("stroke", "", "single stroke S1..S6")
		outDir = flag.String("o", ".", "output directory for PNGs")
		env    = flag.String("env", "meeting", "environment: meeting, lab, resting")
		seed   = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(*word, *st, *outDir, *env, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ewspec:", err)
		os.Exit(1)
	}
}

func run(word, strokeName, outDir, envName string, seed uint64) error {
	if (word == "") == (strokeName == "") {
		return fmt.Errorf("specify exactly one of -word or -stroke")
	}
	var env acoustic.Environment
	switch envName {
	case "meeting":
		env = acoustic.StandardEnvironment(acoustic.MeetingRoom)
	case "lab":
		env = acoustic.StandardEnvironment(acoustic.LabArea)
	case "resting":
		env = acoustic.StandardEnvironment(acoustic.RestingZone)
	default:
		return fmt.Errorf("unknown environment %q", envName)
	}
	sess := participant.NewSession(participant.SixParticipants()[0], seed)
	var (
		rec *capture.Recording
		err error
	)
	if word != "" {
		rec, err = capture.PerformWord(sess, stroke.DefaultScheme(), word, acoustic.Mate9(), env, seed)
	} else {
		key := map[string]string{"S1": "1", "S2": "2", "S3": "3", "S4": "4", "S5": "5", "S6": "6"}[strokeName]
		var seq stroke.Sequence
		seq, err = stroke.ParseSequenceKey(key)
		if err != nil || len(seq) == 0 {
			return fmt.Errorf("unknown stroke %q", strokeName)
		}
		rec, err = capture.Perform(sess, seq, acoustic.Mate9(), env, seed)
	}
	if err != nil {
		return err
	}

	eng, err := calibrate.NewCalibratedEngine(pipeline.DefaultConfig())
	if err != nil {
		return err
	}
	eng.KeepStages = true
	out, err := eng.Recognize(rec.Signal)
	if err != nil {
		return err
	}
	if out.Stages == nil {
		return fmt.Errorf("stages not captured")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	write := func(name string, render func(*os.File) error) error {
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	opts := imgproc.RenderOptions{ZoomX: 3, ZoomY: 3}
	if err := write("1_raw_spectrogram.png", func(f *os.File) error {
		return imgproc.RenderMatrixPNG(f, out.Stages.Raw.Data, opts)
	}); err != nil {
		return err
	}
	if err := write("2_denoised.png", func(f *os.File) error {
		return imgproc.RenderMatrixPNG(f, out.Stages.Denoised, opts)
	}); err != nil {
		return err
	}
	if err := write("3_binary.png", func(f *os.File) error {
		return imgproc.RenderBinaryPNG(f, out.Stages.Binary, opts)
	}); err != nil {
		return err
	}
	if err := write("4_profile.png", func(f *os.File) error {
		return imgproc.RenderProfilePNG(f, out.Profile, 240, imgproc.RenderOptions{ZoomX: 3})
	}); err != nil {
		return err
	}
	fmt.Printf("recognized: %v  segments: %v\n", out.Sequence, out.Segments)
	return nil
}
