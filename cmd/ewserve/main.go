// Command ewserve runs the EchoWrite multi-session recognition service:
// an HTTP front end where many concurrent clients stream audio chunks
// and receive stroke detections and word candidates as they complete.
// Sessions are hash-partitioned across -shards independent managers
// (default GOMAXPROCS), each with its own queue, session table and
// engine pool, so no lock is shared between shards on the hot path.
//
//	ewserve -addr :8791 -max-sessions 256 -workers 8 -shards 8
//
// Wire protocol (see internal/serve):
//
//	POST   /v1/sessions            open a session → {"session":"s000001"}
//	POST   /v1/sessions/{id}/audio 16-bit LE mono PCM at 44.1 kHz → detections
//	POST   /v1/sessions/{id}/flush drain + word candidates
//	DELETE /v1/sessions/{id}       close
//	GET    /v1/stream              WebSocket duplex ingest (see internal/serve/ws.go)
//	GET    /statsz                 service snapshot (JSON)
//	GET    /metricsz               Prometheus text exposition (v0.0.4)
//
// A full ingest queue returns 429 (resend the chunk after a short
// delay); a full session table returns 503. Drive it with cmd/ewload.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/calibrate"
	"repro/internal/infer"
	"repro/internal/lexicon"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/stroke"
)

func main() {
	var (
		addr        = flag.String("addr", ":8791", "listen address")
		maxSessions = flag.Int("max-sessions", 256, "bound on concurrent sessions (total across shards)")
		shards      = flag.Int("shards", 0, "session-manager shards (0 = GOMAXPROCS)")
		workers     = flag.Int("workers", 0, "worker goroutines, total across shards (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "ingest queue depth (0 = 4×workers)")
		prewarm     = flag.Int("prewarm", 4, "engines built at startup")
		idle        = flag.Duration("idle", 2*time.Minute, "idle-session eviction timeout")
		maxChunk    = flag.Int("max-chunk", 1<<18, "max buffered samples per audio POST")
		window      = flag.Int("max-window", 0, "per-session spectrogram window bound (0 = pipeline default)")
		stftBatch   = flag.Int("stft-batch", 0, "batch up to this many sessions' STFT columns through one shared plan per shard (0 = per-worker feeds)")
		calibrated  = flag.Bool("calibrated", false, "pool calibrated engines (slower startup, better templates)")
		noWords     = flag.Bool("no-words", false, "disable word candidates on flush")
	)
	flag.Parse()
	if err := run(*addr, *maxSessions, *shards, *workers, *queue, *prewarm, *idle, *maxChunk, *window, *stftBatch, *calibrated, *noWords); err != nil {
		fmt.Fprintln(os.Stderr, "ewserve:", err)
		os.Exit(1)
	}
}

func run(addr string, maxSessions, shards, workers, queue, prewarm int, idle time.Duration,
	maxChunk, window, stftBatch int, calibrated, noWords bool) error {
	factory := serve.EngineFactory(nil)
	if calibrated {
		factory = func() (*pipeline.Engine, error) {
			return calibrate.NewCalibratedEngine(pipeline.DefaultConfig())
		}
	}
	var recognizer *infer.Recognizer
	if !noWords {
		var err error
		recognizer, err = buildRecognizer()
		if err != nil {
			return err
		}
	}

	mgr, err := serve.NewShardedManager(serve.Config{
		Engines:     factory,
		Recognizer:  recognizer,
		MaxSessions: maxSessions,
		IdleTimeout: idle,
		Workers:     workers,
		QueueDepth:  queue,
		Prewarm:     prewarm,
		MaxChunk:    maxChunk,
		MaxWindow:   window,
		STFTBatch:   stftBatch,
	}, shards)
	if err != nil {
		return err
	}
	defer mgr.Shutdown()

	srv := serve.NewServer(mgr)
	stop := make(chan struct{})
	if idle > 0 {
		go srv.RunEvictor(idle/4+time.Second, stop)
	}

	httpSrv := &http.Server{
		Addr:    addr,
		Handler: srv.Handler(),
		// Slowloris protection: a client must finish its request headers
		// promptly, and idle keep-alive connections are reclaimed.
		// ReadTimeout/WriteTimeout stay unset — audio POSTs from slow
		// writers are legitimate, and /v1/stream connections are
		// long-lived by design (ws.Accept clears the per-connection
		// deadlines after hijacking, so IdleTimeout cannot kill an
		// upgraded stream).
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ewserve listening on %s (sessions ≤ %d, workers %d, shards %d)\n",
		addr, maxSessions, workersOrDefault(workers), mgr.NumShards())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-errCh:
		close(stop)
		return err
	case <-sig:
		fmt.Println("\newserve: shutting down")
		close(stop)
		return httpSrv.Close()
	}
}

// buildRecognizer wires the inference layer the way internal/core does,
// without paying pipeline calibration (the serving engines match with
// analytic or pool-configured templates).
func buildRecognizer() (*infer.Recognizer, error) {
	dict, err := lexicon.NewDictionary(stroke.DefaultScheme(), lexicon.DefaultWords())
	if err != nil {
		return nil, err
	}
	return infer.NewRecognizer(dict, infer.DefaultConfusion(), lexicon.DefaultBigram(), infer.DefaultConfig())
}

func workersOrDefault(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
