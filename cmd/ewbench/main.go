// Command ewbench regenerates the paper's tables and figures. Without
// arguments it runs the full suite at a moderate protocol size; -full
// uses the paper's 30-repetition protocol, -quick a minimal one, and
// -run selects experiments by name (comma-separated).
//
//	ewbench -run fig12,fig14 -reps 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		full  = flag.Bool("full", false, "paper-scale protocol (30 reps, 6 participants)")
		quick = flag.Bool("quick", false, "minimal protocol (3 reps, 3 participants)")
		reps  = flag.Int("reps", 0, "override repetition count")
		seed  = flag.Uint64("seed", 1, "experiment seed")
		run   = flag.String("run", "", "comma-separated experiment names (default: all)")
		list  = flag.Bool("list", false, "list experiment names and exit")
		md    = flag.Bool("md", false, "emit GitHub-flavored Markdown instead of plain tables")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.Name)
		}
		return
	}
	cfg := experiments.Config{Reps: 10, Participants: 6, Seed: *seed}
	if *quick {
		cfg = experiments.Quick()
		cfg.Seed = *seed
	}
	if *full {
		cfg = experiments.Full()
		cfg.Seed = *seed
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if err := runAll(cfg, *run, *md); err != nil {
		fmt.Fprintln(os.Stderr, "ewbench:", err)
		os.Exit(1)
	}
}

func runAll(cfg experiments.Config, names string, md bool) error {
	var selected []experiments.Experiment
	if names == "" {
		selected = experiments.All()
	} else {
		for _, n := range strings.Split(names, ",") {
			n = strings.TrimSpace(n)
			e := experiments.Find(n)
			if e == nil {
				return fmt.Errorf("unknown experiment %q (use -list)", n)
			}
			selected = append(selected, *e)
		}
	}
	if md {
		fmt.Printf("Protocol: reps=%d, participants=%d, seed=%d.\n\n", cfg.Reps, cfg.Participants, cfg.Seed)
	} else {
		fmt.Printf("EchoWrite reproduction — %d experiments, reps=%d participants=%d seed=%d\n\n",
			len(selected), cfg.Reps, cfg.Participants, cfg.Seed)
	}
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if md {
			fmt.Print(table.RenderMarkdown())
		} else {
			fmt.Print(table.Render())
			fmt.Printf("   (%s in %.1fs)\n\n", e.Name, time.Since(start).Seconds())
		}
	}
	return nil
}
