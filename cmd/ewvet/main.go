// Command ewvet runs EchoWrite's project-specific static-analysis
// suite (internal/analysis) over the whole module: lock discipline in
// the serving layer, float-equality hygiene in the DSP core,
// allocation budgets on annotated hot paths, guarded-field access and
// goroutine lifecycle rules, plus the interprocedural layer — call
// graph construction, hot-path propagation (hotprop) and global
// lock-order deadlock detection (lockorder). It prints findings as
// file:line:col and exits non-zero when any are found, so `make lint`
// gates CI on it.
//
// Usage:
//
//	ewvet [-list] [-only name,name] [-fast] [-json] [-timing] [dir]
//
// dir defaults to the current directory; the module containing it is
// analyzed in full (testdata fixture packages are skipped, exactly as
// the go tool skips them). -fast keeps only the intra-procedural
// analyzers (the `make lint-fast` inner-loop gate), -json emits the
// machine-readable findings document, -timing prints per-analyzer
// wall time to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	fast := flag.Bool("fast", false, "intra-procedural analyzers only (skip callgraph/hotprop/lockorder)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (file/line/analyzer/message/trail)")
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	flag.Parse()

	analyzers := analysis.Registry()
	if *list {
		for _, a := range analyzers {
			kind := "package"
			if _, ok := a.(analysis.ModuleAnalyzer); ok {
				kind = "module"
			}
			fmt.Printf("%-14s [%s] %s\n", a.Name(), kind, a.Doc())
		}
		return
	}
	if *fast {
		analyzers = analysis.Fast(analyzers)
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				kept = append(kept, a)
				delete(want, a.Name())
			}
		}
		for name := range want {
			fatalf("ewvet: unknown analyzer %q", name)
		}
		analyzers = kept
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fatalf("ewvet: %v", err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fatalf("ewvet: %v", err)
	}
	findings, timings := analysis.RunTimed(pkgs, analyzers)
	if *timing {
		analysis.WriteTimings(os.Stderr, timings)
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings, len(pkgs), len(analyzers)); err != nil {
			fatalf("ewvet: %v", err)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fatalf("ewvet: %d finding(s) in %d package(s)", len(findings), len(pkgs))
	}
	fmt.Printf("ewvet: %d packages clean (%d analyzers)\n", len(pkgs), len(analyzers))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
