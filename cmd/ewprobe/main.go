// Command ewprobe is a development diagnostic: it synthesizes strokes,
// runs the pipeline, and prints either per-stroke detail (-detail) or a
// batch confusion matrix (-n reps) so thresholds can be calibrated.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/acoustic"
	"repro/internal/calibrate"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/stroke"
)

func main() {
	detail := flag.Bool("detail", false, "print per-stroke profiles and templates")
	reps := flag.Int("n", 10, "repetitions per stroke for the confusion matrix")
	env := flag.Int("env", 1, "environment 1=meeting 2=lab 3=resting")
	norm := flag.Bool("norm", true, "amplitude-normalize profiles before DTW")
	flag.Parse()
	if err := run(*detail, *reps, acoustic.EnvironmentKind(*env), *norm); err != nil {
		fmt.Fprintln(os.Stderr, "ewprobe:", err)
		os.Exit(1)
	}
}

func run(detail bool, reps int, env acoustic.EnvironmentKind, norm bool) error {
	cfg := pipeline.DefaultConfig()
	cfg.AmplitudeNormalize = norm
	eng, err := calibrate.NewCalibratedEngine(cfg)
	if err != nil {
		return err
	}
	eng.KeepStages = detail
	participants := participant.SixParticipants()

	if detail {
		sess := participant.NewSession(participants[0], 42)
		for _, st := range stroke.AllStrokes() {
			if err := probeOne(eng, sess, st, env); err != nil {
				return err
			}
		}
		return nil
	}

	// Batch: confusion matrix over reps × participants.
	var confusion [stroke.NumStrokes][stroke.NumStrokes + 1]int // +1: miss column
	segCounts := map[int]int{}
	for pi, p := range participants {
		sess := participant.NewSession(p, uint64(1000+pi))
		for _, st := range stroke.AllStrokes() {
			for r := 0; r < reps; r++ {
				perf, err := sess.Perform(stroke.Sequence{st})
				if err != nil {
					return err
				}
				scene := &acoustic.Scene{
					Device:     acoustic.Mate9(),
					Env:        acoustic.StandardEnvironment(env),
					Reflectors: acoustic.HandReflectors(perf.Finger),
					Duration:   perf.Finger.Duration(),
					Seed:       uint64(pi*10000 + int(st)*100 + r),
				}
				sig, err := scene.Synthesize()
				if err != nil {
					return err
				}
				rec, err := eng.Recognize(sig)
				if err != nil {
					return err
				}
				segCounts[len(rec.Segments)]++
				if len(rec.Detections) == 1 {
					confusion[st.Index()][rec.Detections[0].Stroke.Index()]++
				} else {
					confusion[st.Index()][stroke.NumStrokes]++
				}
			}
		}
	}
	fmt.Printf("env=%v norm=%v reps=%d x %d participants\n", env, norm, reps, len(participants))
	fmt.Printf("segment-count histogram: %v\n", segCounts)
	fmt.Println("confusion (rows=truth, cols=S1..S6, miss):")
	correct, total := 0, 0
	for i := 0; i < stroke.NumStrokes; i++ {
		fmt.Printf("  S%d: ", i+1)
		for j := 0; j <= stroke.NumStrokes; j++ {
			fmt.Printf("%4d ", confusion[i][j])
			total += confusion[i][j]
		}
		correct += confusion[i][i]
		rowTotal := 0
		for j := 0; j <= stroke.NumStrokes; j++ {
			rowTotal += confusion[i][j]
		}
		fmt.Printf("  acc=%.1f%%\n", 100*float64(confusion[i][i])/float64(rowTotal))
	}
	fmt.Printf("overall accuracy: %.1f%%\n", 100*float64(correct)/float64(total))
	return nil
}

func probeOne(eng *pipeline.Engine, sess *participant.Session, st stroke.Stroke, env acoustic.EnvironmentKind) error {
	perf, err := sess.Perform(stroke.Sequence{st})
	if err != nil {
		return err
	}
	scene := &acoustic.Scene{
		Device:     acoustic.Mate9(),
		Env:        acoustic.StandardEnvironment(env),
		Reflectors: acoustic.HandReflectors(perf.Finger),
		Duration:   perf.Finger.Duration(),
		Seed:       uint64(st),
	}
	sig, err := scene.Synthesize()
	if err != nil {
		return err
	}
	rec, err := eng.Recognize(sig)
	if err != nil {
		return err
	}
	fmt.Printf("== %v  truth span [%.2f,%.2f]s  dur %.2fs\n", st, perf.Spans[0].Start, perf.Spans[0].End, sig.Duration())
	fmt.Printf("   profile (Hz): ")
	for i, v := range rec.Profile {
		if i%2 == 0 {
			fmt.Printf("%.0f ", v)
		}
	}
	fmt.Println()
	fmt.Printf("   segments: %v\n", rec.Segments)
	for _, d := range rec.Detections {
		fmt.Printf("   seg [%d,%d] -> %v  dist=%.3f\n", d.Segment.Start, d.Segment.End, d.Stroke, d.Distances)
	}
	tpl := eng.TemplateLibrary()[st.Index()]
	fmt.Printf("   template(%v): ", st)
	for i, v := range tpl {
		if i%2 == 0 {
			fmt.Printf("%.0f ", v)
		}
	}
	fmt.Println()
	return nil
}
