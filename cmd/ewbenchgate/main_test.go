package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/dsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSTFTCompute/band-4         	    1406	   1630957 ns/op	  116800 B/op	       3 allocs/op
BenchmarkSTFTCompute/band-4         	    1428	   1530721 ns/op	  116800 B/op	       3 allocs/op
BenchmarkSTFTCompute/band-4         	    1440	   1829650 ns/op	  116800 B/op	       3 allocs/op
BenchmarkStreamFeed1024-4           	     100	  10000000 ns/op	     500 B/op	       7 allocs/op
PASS
ok  	repro/internal/dsp	8.374s
`

func parseSample(t *testing.T) map[string]baselineEntry {
	t.Helper()
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseBenchTakesMinimaAndStripsProcSuffix(t *testing.T) {
	got := parseSample(t)
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	band, ok := got["BenchmarkSTFTCompute/band"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if band.NsPerOp != 1530721 {
		t.Errorf("band ns/op = %v, want the minimum 1530721", band.NsPerOp)
	}
	if band.AllocsPerOp != 3 {
		t.Errorf("band allocs/op = %d, want 3", band.AllocsPerOp)
	}
	if feed := got["BenchmarkStreamFeed1024"]; feed.AllocsPerOp != 7 {
		t.Errorf("feed allocs/op = %d, want 7", feed.AllocsPerOp)
	}
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	got := parseSample(t)
	base := baseline{Benchmarks: map[string]baselineEntry{
		// Measured minimum 1530721 is an 8% regression over this: passes.
		"BenchmarkSTFTCompute/band": {NsPerOp: 1417000, AllocsPerOp: 3},
		"BenchmarkStreamFeed1024":   {NsPerOp: 10000000, AllocsPerOp: 7},
	}}
	if failures := check(base, got, 0.20); len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	got := parseSample(t)
	base := baseline{Benchmarks: map[string]baselineEntry{
		// Measured minimum 1530721 is a 53% regression over this.
		"BenchmarkSTFTCompute/band": {NsPerOp: 1000000, AllocsPerOp: 3},
	}}
	failures := check(base, got, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "exceeds baseline") {
		t.Fatalf("failures = %v, want one ns/op regression", failures)
	}
}

func TestCheckFailsOnAllocChange(t *testing.T) {
	got := parseSample(t)
	base := baseline{Benchmarks: map[string]baselineEntry{
		"BenchmarkSTFTCompute/band": {NsPerOp: 1600000, AllocsPerOp: 0},
	}}
	failures := check(base, got, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("failures = %v, want one allocation failure", failures)
	}
}

func TestCheckFailsOnMissingBenchmark(t *testing.T) {
	got := parseSample(t)
	base := baseline{Benchmarks: map[string]baselineEntry{
		"BenchmarkGone": {NsPerOp: 100, AllocsPerOp: 0},
	}}
	failures := check(base, got, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("failures = %v, want one missing-benchmark failure", failures)
	}
}
