// Command ewbenchgate is the benchmark regression gate: it parses `go
// test -bench` output on stdin, reduces repeated runs of each benchmark
// to their minimum (the least-noisy estimate on a shared machine), and
// compares the result against a committed baseline file. The gate fails
// when any baselined benchmark slows down by more than the tolerance,
// changes its allocation count, or is missing from the input — a silent
// drop must not read as a pass.
//
// Usage:
//
//	go test -run '^$' -bench B -benchmem -count 3 ./pkg | ewbenchgate [flags]
//
// With -update the measured results overwrite the baseline instead of
// being checked, which is how a deliberate performance change lands: the
// reviewer sees the baseline diff next to the code that caused it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline is the committed reference measurement set.
type baseline struct {
	// Note records where the numbers came from; informational only.
	Note       string                   `json:"note,omitempty"`
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkSTFTCompute/band-4   1406   1630957 ns/op   116800 B/op   3 allocs/op
//
// The trailing -N is the GOMAXPROCS suffix, stripped so baselines do not
// depend on the machine's core count.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op)?(?:\s+([0-9]+) allocs/op)?`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to check against (or write with -update)")
	tol := flag.Float64("tol", 0.20, "allowed fractional ns/op regression before the gate fails")
	update := flag.Bool("update", false, "write measured results to the baseline instead of checking")
	flag.Parse()

	got, err := parseBench(os.Stdin)
	if err != nil {
		fatal("parse: %v", err)
	}
	if len(got) == 0 {
		fatal("no benchmark result lines on stdin")
	}

	if *update {
		if err := writeBaseline(*baselinePath, got); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("ewbenchgate: wrote %d benchmarks to %s\n", len(got), *baselinePath)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal("%v", err)
	}
	failures := check(base, got, *tol)
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "ewbenchgate: FAIL %s\n", f)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "ewbenchgate: %d regression(s) against %s (tolerance %.0f%%); if intentional, re-run with -update and commit the baseline\n",
			len(failures), *baselinePath, *tol*100)
		os.Exit(1)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		g := got[name]
		fmt.Printf("ewbenchgate: ok %-40s %12.0f ns/op (baseline %12.0f, %+5.1f%%), %d allocs/op\n",
			name, g.NsPerOp, b.NsPerOp, 100*(g.NsPerOp-b.NsPerOp)/b.NsPerOp, g.AllocsPerOp)
	}
}

// parseBench reduces stdin's benchmark lines to per-name minima.
func parseBench(r io.Reader) (map[string]baselineEntry, error) {
	got := make(map[string]baselineEntry)
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		var allocs int64
		if m[3] != "" {
			allocs, err = strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
			}
		}
		cur, ok := got[name]
		if !ok || ns < cur.NsPerOp {
			cur.NsPerOp = ns
		}
		// Allocation counts must be stable across runs; keep the max so a
		// flaky allocation in any run surfaces.
		if !seen[name] || allocs > cur.AllocsPerOp {
			cur.AllocsPerOp = allocs
		}
		seen[name] = true
		got[name] = cur
	}
	return got, sc.Err()
}

// check compares measured minima against the baseline. Every baselined
// benchmark must be present, within the ns/op tolerance, and at exactly
// its baselined allocation count.
func check(base baseline, got map[string]baselineEntry, tol float64) []string {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		g, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from bench output", name))
			continue
		}
		if limit := want.NsPerOp * (1 + tol); g.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f by %.1f%% (limit %.0f%%)",
				name, g.NsPerOp, want.NsPerOp, 100*(g.NsPerOp-want.NsPerOp)/want.NsPerOp, tol*100))
		}
		if g.AllocsPerOp != want.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, baseline %d (allocation counts are gated exactly)",
				name, g.AllocsPerOp, want.AllocsPerOp))
		}
	}
	return failures
}

func readBaseline(path string) (baseline, error) {
	var base baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return base, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return base, fmt.Errorf("baseline %s: no benchmarks", path)
	}
	return base, nil
}

func writeBaseline(path string, got map[string]baselineEntry) error {
	base := baseline{
		Note:       "minima of -count runs; update via `make bench-baseline`",
		Benchmarks: got,
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ewbenchgate: "+format+"\n", args...)
	os.Exit(1)
}
