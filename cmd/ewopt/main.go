// Command ewopt is the §VII-C self-adjusting toolchain: it checks whether
// a letter→stroke scheme (and the gesture templates behind it) is usable,
// and optionally optimizes the letter grouping for lower dictionary
// ambiguity.
//
//	ewopt -check                         # validate the default scheme
//	ewopt -scheme "EFTZ,HIKLMN,AVWXY,BDPR,CGOQS,JU" -check
//	ewopt -optimize -moves 8             # greedy grouping improvement
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/schemeopt"
	"repro/internal/stroke"
)

func main() {
	var (
		schemeSpec = flag.String("scheme", "", "six comma-separated letter groups for S1..S6 (default: the built-in scheme)")
		check      = flag.Bool("check", false, "run the gesture/ambiguity acceptance check")
		optimize   = flag.Bool("optimize", false, "greedily improve the letter grouping")
		moves      = flag.Int("moves", 8, "maximum optimizer moves")
		expanded   = flag.Bool("expanded", false, "use the 5000-word expanded vocabulary")
	)
	flag.Parse()
	if err := run(*schemeSpec, *check, *optimize, *moves, *expanded); err != nil {
		fmt.Fprintln(os.Stderr, "ewopt:", err)
		os.Exit(1)
	}
}

func parseScheme(spec string) (*stroke.Scheme, error) {
	if spec == "" {
		return stroke.DefaultScheme(), nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != stroke.NumStrokes {
		return nil, fmt.Errorf("scheme needs %d comma-separated groups, got %d", stroke.NumStrokes, len(parts))
	}
	groups := make(map[stroke.Stroke]string, stroke.NumStrokes)
	for i, p := range parts {
		groups[stroke.Stroke(i+1)] = strings.TrimSpace(p)
	}
	return stroke.NewScheme(groups)
}

func run(schemeSpec string, check, optimize bool, moves int, expanded bool) error {
	if !check && !optimize {
		return fmt.Errorf("nothing to do: pass -check and/or -optimize")
	}
	scheme, err := parseScheme(schemeSpec)
	if err != nil {
		return err
	}
	words := lexicon.DefaultWords()
	if expanded {
		words = lexicon.ExpandedWords()
	}
	printGroups := func(sc *stroke.Scheme) {
		for _, st := range stroke.AllStrokes() {
			fmt.Printf("  %v: %s\n", st, string(sc.Letters(st)))
		}
	}
	fmt.Println("scheme under test:")
	printGroups(scheme)

	if check {
		templates, err := stroke.NewTemplateSet(stroke.DefaultTemplateConfig())
		if err != nil {
			return err
		}
		rep, err := schemeopt.Check(scheme, words, templates, schemeopt.Thresholds{})
		if err != nil {
			return err
		}
		fmt.Printf("\nacceptance check (%d-word vocabulary):\n", len(words))
		fmt.Printf("  min template distance: %.1f Hz/frame (%s)\n", rep.MinTemplateDistance, rep.TightestPair)
		fmt.Printf("  mean collisions:       %.2f (max %d)\n", rep.MeanCollisions, rep.MaxCollisions)
		fmt.Printf("  top-5 coverage:        %.1f%%\n", 100*rep.TopKCoverage)
		if rep.OK {
			fmt.Println("  verdict: ACCEPTED")
		} else {
			fmt.Println("  verdict: REJECTED")
			for _, r := range rep.Reasons {
				fmt.Println("   -", r)
			}
		}
	}

	if optimize {
		before, err := schemeopt.AmbiguityCost(scheme, words)
		if err != nil {
			return err
		}
		opt, after, err := schemeopt.Optimize(scheme, words, moves)
		if err != nil {
			return err
		}
		fmt.Printf("\noptimizer: ambiguity cost %.4f → %.4f (%d max moves)\n", before, after, moves)
		fmt.Println("optimized grouping:")
		printGroups(opt)
	}
	return nil
}
