// Command echowrite is the end-to-end demo: it simulates a user writing a
// phrase in the air next to a phone, synthesizes the microphone stream the
// phone would record, runs the full EchoWrite pipeline, and prints the
// recognized text with its candidate lists.
//
//	echowrite -phrase "the people" -env resting -participant 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/participant"
)

func main() {
	var (
		phrase = flag.String("phrase", "the people", "phrase to write (dictionary words)")
		env    = flag.String("env", "meeting", "environment: meeting, lab, resting")
		part   = flag.Int("participant", 1, "participant model 1..6")
		watch  = flag.Bool("watch", false, "use the smartwatch front-end instead of the phone")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		wav    = flag.String("wav", "", "recognize a 44.1 kHz mono WAV file (e.g. from ewsynth) instead of simulating")
	)
	flag.Parse()
	var err error
	if *wav != "" {
		err = runWAV(*wav)
	} else {
		err = run(*phrase, *env, *part, *watch, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "echowrite:", err)
		os.Exit(1)
	}
}

// runWAV recognizes one word's strokes from a recorded file — the
// file-based entry point for audio produced outside the simulator.
func runWAV(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sig, err := audio.DecodeWAV(f)
	if err != nil {
		return err
	}
	fmt.Printf("EchoWrite — recognizing %s (%.2f s at %.0f Hz)\n", path, sig.Duration(), sig.Rate)
	sys, err := core.New(core.DefaultOptions())
	if err != nil {
		return err
	}
	res, err := sys.RecognizeWords(sig)
	if err != nil {
		return err
	}
	fmt.Printf("strokes: %v\n", res.Strokes)
	for _, d := range res.Recognition.Detections {
		flag := ""
		if d.Contaminated {
			flag = "  [burst-contaminated: rewrite suggested]"
		}
		fmt.Printf("  frames [%d,%d] → %v%s\n", d.Segment.Start, d.Segment.End, d.Stroke, flag)
	}
	if len(res.Candidates) > 0 {
		fmt.Printf("candidates:")
		for _, c := range res.Candidates {
			fmt.Printf(" %s", c.Word)
		}
		fmt.Println()
	} else if len(res.Strokes) > 0 {
		fmt.Println("no dictionary match for this stroke sequence")
	}
	return nil
}

func environment(name string) (acoustic.Environment, error) {
	switch name {
	case "meeting":
		return acoustic.StandardEnvironment(acoustic.MeetingRoom), nil
	case "lab":
		return acoustic.StandardEnvironment(acoustic.LabArea), nil
	case "resting":
		return acoustic.StandardEnvironment(acoustic.RestingZone), nil
	default:
		return acoustic.Environment{}, fmt.Errorf("unknown environment %q", name)
	}
}

func run(phrase, envName string, part int, watch bool, seed uint64) error {
	env, err := environment(envName)
	if err != nil {
		return err
	}
	roster := participant.SixParticipants()
	if part < 1 || part > len(roster) {
		return fmt.Errorf("participant must be 1..%d", len(roster))
	}
	dev := acoustic.Mate9()
	if watch {
		dev = acoustic.Watch2()
	}
	fmt.Printf("EchoWrite demo — %s, %s, %s\n", dev.Name, env.Kind, roster[part-1].Name)
	fmt.Println("calibrating templates (training-free: derived from the gestures themselves)...")
	sys, err := core.New(core.DefaultOptions())
	if err != nil {
		return err
	}
	sess := participant.NewSession(roster[part-1], seed)
	var entered []string
	for i, word := range strings.Fields(strings.ToLower(phrase)) {
		rec, err := capture.PerformWord(sess, sys.Dictionary().Scheme(), word, dev, env, seed+uint64(i))
		if err != nil {
			return err
		}
		truth, err := sys.Dictionary().Scheme().Encode(word)
		if err != nil {
			return err
		}
		res, wr, err := sys.EnterWord(word, rec.Signal)
		if err != nil {
			return err
		}
		fmt.Printf("\nword %d: %q  (%.1fs of audio)\n", i+1, word, rec.Signal.Duration())
		fmt.Printf("  intended strokes:   %v\n", truth)
		fmt.Printf("  recognized strokes: %v\n", wr.Strokes)
		if res.Predicted {
			fmt.Printf("  accepted from next-word prediction\n")
		} else if len(wr.Candidates) > 0 {
			fmt.Printf("  candidates:")
			for _, c := range wr.Candidates {
				marker := ""
				if c.Word == word {
					marker = "*"
				}
				fmt.Printf(" %s%s", c.Word, marker)
			}
			fmt.Println()
		} else {
			fmt.Printf("  no dictionary match\n")
		}
		chosen := res.Chosen
		if chosen == "" {
			chosen = "∅"
		}
		entered = append(entered, chosen)
		fmt.Printf("  entered: %q\n", chosen)
	}
	fmt.Printf("\nfinal text: %q\n", strings.Join(entered, " "))
	return nil
}
