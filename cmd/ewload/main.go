// Command ewload is the load generator for ewserve: it synthesizes N
// concurrent writers with the acoustic simulator, streams their audio
// chunk by chunk over the wire protocol, and reports throughput,
// p50/p95/p99 per-stroke latency, error counts, and the server's
// per-shard backpressure picture from /statsz.
//
// Against a running server:
//
//	ewload -addr http://127.0.0.1:8791 -writers 32
//
// Self-contained (spins an in-process sharded ewserve on a loopback port):
//
//	ewload -writers 16 -shards 4 -workers 4 -queue 8
//
// Scenario replay (the soak harness): -scenario expands a declarative
// matrix — environment × device × proficiency × seed — records each
// cell's WAV trace once into a content-addressed cache (-trace-dir) and
// replays identical bytes over BOTH ingest paths, first per-chunk HTTP
// POSTs and then persistent /v1/stream WebSockets. After each phase the
// run scrapes /metricsz, parses it strictly, and holds it to health
// bands (progress floor, backpressure ratio, idle evictions,
// feed-latency tail); any violated band in any phase makes the exit
// code non-zero:
//
//	ewload -scenario all -soak 30s
//	ewload -scenario smoke -soak 2s          # what `make soak-smoke` runs
//	ewload -scenario cafe-babble.mate9.on.p70d050.s1
//
// -soak loops whole writer sessions until the deadline; EW_SOAK=long in
// the environment gears the duration ×10 for nightly runs without
// changing the command line. -metrics-push POSTs the raw exposition to
// a collector URL every -push-interval during the soak (best effort)
// and once at the end (counted toward the exit code).
//
// Saturating the worker pools is visible as backpressure 429s in the
// report rather than unbounded memory growth on the server. With
// -max-error-rate set below 1, ewload exits non-zero when the fraction
// of failed operations exceeds the threshold, so CI can use a short run
// as a serving smoke gate. With -metricsz the run additionally scrapes
// GET /metricsz afterwards and fails unless the Prometheus exposition
// parses strictly (internal/metrics/expose); the scrape verdict and the
// error-rate verdict are combined, never short-circuited, in every
// mode. With -ws every writer holds one persistent /v1/stream WebSocket
// instead of POSTing each chunk, for a head-to-head latency comparison
// of the two ingest paths.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/audio"
	"repro/internal/infer"
	"repro/internal/lexicon"
	"repro/internal/metrics/expose"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/stroke"
)

type options struct {
	addr         string
	writers      int
	word         string
	signals      int
	chunkMs      int
	seed         uint64
	retries      int
	maxErrorRate float64
	shards       int
	workers      int
	queue        int
	maxSessions  int
	prewarm      int
	stftBatch    int
	metricsz     bool
	ws           bool
	scenarioName string
	soak         time.Duration
	traceDir     string
	metricsPush  string
	pushInterval time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "target ewserve base URL (empty = start one in-process)")
	flag.IntVar(&o.writers, "writers", 8, "concurrent synthetic writers (scenario mode raises this to cover every cell)")
	flag.StringVar(&o.word, "word", "on", "word every writer writes")
	flag.IntVar(&o.signals, "signals", 0, "distinct synthesized recordings shared by writers (0 = min(writers, 4))")
	flag.IntVar(&o.chunkMs, "chunk-ms", 50, "ingest chunk size in milliseconds")
	flag.Uint64Var(&o.seed, "seed", 1, "simulation seed")
	flag.IntVar(&o.retries, "retries", 100, "backpressure retries per chunk")
	flag.Float64Var(&o.maxErrorRate, "max-error-rate", 0.01, "exit non-zero when the failed-operation fraction exceeds this (1 disables)")
	flag.IntVar(&o.shards, "shards", 0, "in-process server: session-manager shards (0 = GOMAXPROCS)")
	flag.IntVar(&o.workers, "workers", 0, "in-process server: worker goroutines across shards (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "in-process server: ingest queue depth across shards (0 = 4×workers)")
	flag.IntVar(&o.maxSessions, "max-sessions", 256, "in-process server: session bound")
	flag.IntVar(&o.prewarm, "prewarm", 4, "in-process server: engines built at startup")
	flag.IntVar(&o.stftBatch, "stft-batch", 0, "in-process server: batch up to this many sessions' STFT columns through one shared plan per shard (0 = per-worker feeds)")
	flag.BoolVar(&o.metricsz, "metricsz", false, "scrape /metricsz after the run and fail on a malformed exposition")
	flag.BoolVar(&o.ws, "ws", false, "stream over /v1/stream WebSockets instead of per-chunk HTTP POSTs")
	flag.StringVar(&o.scenarioName, "scenario", "", `replay a recorded scenario matrix ("all", "smoke", or one cell name) over both ingest paths with /metricsz band assertions`)
	flag.DurationVar(&o.soak, "soak", 0, "loop writer sessions for this long per phase (EW_SOAK=long gears ×10); implies band assertions")
	flag.StringVar(&o.traceDir, "trace-dir", filepath.Join(os.TempDir(), "ewload-traces"), "content-addressed scenario trace cache")
	flag.StringVar(&o.metricsPush, "metrics-push", "", "POST the raw /metricsz exposition to this URL periodically during the run and once at the end")
	flag.DurationVar(&o.pushInterval, "push-interval", 2*time.Second, "period between -metrics-push uploads")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "ewload:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	client := http.DefaultClient
	if o.addr == "" {
		base, shutdown, err := startInProcess(o.shards, o.workers, o.queue, o.maxSessions, o.prewarm, o.stftBatch)
		if err != nil {
			return err
		}
		defer shutdown()
		o.addr = base
		fmt.Printf("in-process ewserve on %s\n", o.addr)
	}
	if o.soak > 0 && os.Getenv("EW_SOAK") == "long" {
		o.soak *= 10
		fmt.Printf("EW_SOAK=long: soak duration geared to %v per phase\n", o.soak)
	}
	if o.scenarioName != "" {
		return runScenarios(client, o)
	}
	return runPlain(client, o)
}

// runPlain is the classic single-phase load run: synthesized traffic
// over the ingest path -ws selects. All verdicts — metricsz scrape,
// soak bands, error rate — are combined so one failure cannot mask
// another, and every failure reaches the exit code.
func runPlain(client *http.Client, o options) error {
	chunkSamples := 44100 * o.chunkMs / 1000
	proto := "http"
	if o.ws {
		proto = "websocket"
	}
	fmt.Printf("synthesizing recording(s) of %q, driving %d writers (%d-sample chunks, %s)…\n",
		o.word, o.writers, chunkSamples, proto)
	report, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:             o.addr,
		Writers:             o.writers,
		Word:                o.word,
		Signals:             o.signals,
		ChunkSamples:        chunkSamples,
		Seed:                o.seed,
		BackpressureRetries: o.retries,
		Client:              client,
		WS:                  o.ws,
		Duration:            o.soak,
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report)
	printServerShards(client, o.addr)

	var errs []error
	if o.metricsz || o.soak > 0 {
		fams, raw, err := scrapeMetricsz(client, o.addr)
		if err != nil {
			errs = append(errs, err)
		} else if o.soak > 0 {
			bands := bandsFor(o, o.ws)
			if err := bands.CheckMetrics(fams); err != nil {
				errs = append(errs, err)
			}
			errs = append(errs, finalPush(client, o, raw))
		}
	}
	errs = append(errs, bandsFor(o, o.ws).CheckErrorRate(report.ErrorRate()))
	return errors.Join(errs...)
}

// runScenarios is the replay/soak harness: every matrix cell's cached
// trace, over HTTP then over WebSockets, each phase scraped and held to
// the bands. Failures accumulate across phases; any one of them makes
// the whole run exit non-zero.
func runScenarios(client *http.Client, o options) error {
	cells, err := scenario.Select(o.scenarioName)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d cell(s), trace cache %s\n", o.scenarioName, len(cells), o.traceDir)
	recordings := make([]*audio.Signal, len(cells))
	for i, c := range cells {
		sig, err := scenario.LoadTrace(o.traceDir, c)
		if err != nil {
			return err
		}
		recordings[i] = sig
		fmt.Printf("  %-40s %5.1fs trace %s\n", c.Name(), sig.Duration(), c.TraceID()[:12])
	}
	// Every cell must actually replay: one writer per cell minimum.
	writers := max(o.writers, len(cells))
	chunkSamples := 44100 * o.chunkMs / 1000

	var errs []error
	for _, phase := range []struct {
		name string
		ws   bool
	}{{"http", false}, {"websocket", true}} {
		fmt.Printf("\n=== phase %s: %d writers, soak %v ===\n", phase.name, writers, o.soak)
		stopPush := startPusher(client, o)
		report, err := serve.RunLoad(serve.LoadConfig{
			BaseURL:             o.addr,
			Writers:             writers,
			ChunkSamples:        chunkSamples,
			BackpressureRetries: o.retries,
			Client:              client,
			WS:                  phase.ws,
			Recordings:          recordings,
			Duration:            o.soak,
		})
		stopPush()
		if err != nil {
			errs = append(errs, fmt.Errorf("phase %s: %w", phase.name, err))
			continue
		}
		fmt.Print(report)
		printServerShards(client, o.addr)

		bands := bandsFor(o, phase.ws)
		if err := bands.CheckErrorRate(report.ErrorRate()); err != nil {
			errs = append(errs, fmt.Errorf("phase %s: %w", phase.name, err))
		}
		fams, raw, err := scrapeMetricsz(client, o.addr)
		if err != nil {
			errs = append(errs, fmt.Errorf("phase %s: %w", phase.name, err))
			continue
		}
		if err := bands.CheckMetrics(fams); err != nil {
			errs = append(errs, fmt.Errorf("phase %s: %w", phase.name, err))
		} else {
			fmt.Printf("bands              all held (%s)\n", phase.name)
		}
		if err := finalPush(client, o, raw); err != nil {
			errs = append(errs, fmt.Errorf("phase %s: %w", phase.name, err))
		}
	}
	return errors.Join(errs...)
}

// bandsFor builds the assertion set: the defaults, the -max-error-rate
// flag, and the WS families requirement once that ingest path ran.
func bandsFor(o options, ws bool) scenario.Bands {
	b := scenario.DefaultBands()
	b.MaxErrorRate = o.maxErrorRate
	b.RequireWS = ws
	return b
}

// startPusher begins the periodic best-effort -metrics-push loop and
// returns its stop function (a no-op when pushing is off). Mid-run push
// failures only warn — the collector being down must not fail the soak
// — but the final post-run push in finalPush is authoritative.
func startPusher(client *http.Client, o options) func() {
	if o.metricsPush == "" || o.pushInterval <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(o.pushInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_, raw, err := scrapeMetricsz(client, o.addr)
				if err == nil {
					err = scenario.Push(client, o.metricsPush, raw)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "ewload: metrics push (continuing): %v\n", err)
				}
			}
		}
	}()
	return func() {
		close(stop)
		wg.Wait()
	}
}

// finalPush uploads the end-of-run exposition; unlike the periodic
// loop, its failure counts toward the exit code. Nil when pushing is
// off.
func finalPush(client *http.Client, o options, raw []byte) error {
	if o.metricsPush == "" {
		return nil
	}
	if err := scenario.Push(client, o.metricsPush, raw); err != nil {
		return err
	}
	fmt.Printf("metrics pushed     %d bytes to %s\n", len(raw), o.metricsPush)
	return nil
}

// printServerShards fetches /statsz and reports the server-side
// per-shard 429 (backpressure) and queue picture, so a load run shows
// which shards ran hot. Best-effort: a server without the endpoint just
// skips the section.
func printServerShards(client *http.Client, addr string) {
	resp, err := client.Get(addr + "/statsz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return
	}
	fmt.Printf("server 429s        %d total", st.Backpressure)
	if len(st.Shards) > 0 {
		fmt.Print(" — per shard:")
		for i, sh := range st.Shards {
			fmt.Printf(" s%d=%d", i, sh.Backpressure)
		}
	}
	fmt.Println()
}

// scrapeMetricsz scrapes /metricsz through the strict exposition parser
// and prints the summary the smoke gates key on. A malformed family, a
// non-cumulative histogram, a NaN counter, or a missing core family is
// an error.
func scrapeMetricsz(client *http.Client, addr string) ([]expose.Family, []byte, error) {
	fams, raw, err := scenario.Scrape(client, addr+"/metricsz")
	if err != nil {
		return nil, nil, err
	}
	series := 0
	for _, f := range fams {
		series += len(f.Samples)
	}
	fmt.Printf("metricsz           %d families, %d series — exposition parses clean\n", len(fams), series)
	for _, name := range []string{"echowrite_chunks_total", "echowrite_detections_total", "echowrite_backpressure_rejects_total"} {
		total, found := 0.0, false
		for _, f := range fams {
			if f.Name != name {
				continue
			}
			found = true
			for _, s := range f.Samples {
				total += s.Value
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("metricsz exposition missing family %s", name)
		}
		fmt.Printf("  %-38s %g\n", name, total)
	}
	return fams, raw, nil
}

// startInProcess boots a loopback sharded ewserve with word candidates
// enabled and returns its base URL plus a shutdown function.
func startInProcess(shards, workers, queue, maxSessions, prewarm, stftBatch int) (string, func(), error) {
	dict, err := lexicon.NewDictionary(stroke.DefaultScheme(), lexicon.DefaultWords())
	if err != nil {
		return "", nil, err
	}
	rec, err := infer.NewRecognizer(dict, infer.DefaultConfusion(), lexicon.DefaultBigram(), infer.DefaultConfig())
	if err != nil {
		return "", nil, err
	}
	mgr, err := serve.NewShardedManager(serve.Config{
		Recognizer:  rec,
		MaxSessions: maxSessions,
		Workers:     workers,
		QueueDepth:  queue,
		Prewarm:     prewarm,
		STFTBatch:   stftBatch,
	}, shards)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Shutdown()
		return "", nil, err
	}
	srv := &http.Server{Handler: serve.NewServer(mgr).Handler()}
	// ew:allow goexit: srv.Close in the shutdown closure below stops the
	// serve loop; the analyzer cannot see a stop channel because the
	// http.Server value itself carries the mechanism.
	go srv.Serve(ln)
	shutdown := func() {
		srv.Close()
		mgr.Shutdown()
	}
	// Give the listener a beat; Serve is ready as soon as it runs.
	time.Sleep(10 * time.Millisecond)
	return "http://" + ln.Addr().String(), shutdown, nil
}
