// Command ewload is the load generator for ewserve: it synthesizes N
// concurrent writers with the acoustic simulator, streams their audio
// chunk by chunk over the wire protocol, and reports throughput,
// p50/p95/p99 per-stroke latency, error counts, and the server's
// per-shard backpressure picture from /statsz.
//
// Against a running server:
//
//	ewload -addr http://127.0.0.1:8791 -writers 32
//
// Self-contained (spins an in-process sharded ewserve on a loopback port):
//
//	ewload -writers 16 -shards 4 -workers 4 -queue 8
//
// Saturating the worker pools is visible as backpressure 429s in the
// report rather than unbounded memory growth on the server. With
// -max-error-rate set below 1, ewload exits non-zero when the fraction
// of failed operations exceeds the threshold, so CI can use a short run
// as a serving smoke gate. With -metricsz the run additionally scrapes
// GET /metricsz afterwards and fails unless the Prometheus exposition
// parses strictly (internal/metrics/expose). With -ws every writer
// holds one persistent /v1/stream WebSocket instead of POSTing each
// chunk, for a head-to-head latency comparison of the two ingest paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/infer"
	"repro/internal/lexicon"
	"repro/internal/metrics/expose"
	"repro/internal/serve"
	"repro/internal/stroke"
)

func main() {
	var (
		addr         = flag.String("addr", "", "target ewserve base URL (empty = start one in-process)")
		writers      = flag.Int("writers", 8, "concurrent synthetic writers")
		word         = flag.String("word", "on", "word every writer writes")
		signals      = flag.Int("signals", 4, "distinct synthesized recordings shared by writers")
		chunkMs      = flag.Int("chunk-ms", 50, "ingest chunk size in milliseconds")
		seed         = flag.Uint64("seed", 1, "simulation seed")
		retries      = flag.Int("retries", 100, "backpressure retries per chunk")
		maxErrorRate = flag.Float64("max-error-rate", 1.0, "exit non-zero when the failed-operation fraction exceeds this (1 disables)")
		shards       = flag.Int("shards", 0, "in-process server: session-manager shards (0 = GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "in-process server: worker goroutines across shards (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "in-process server: ingest queue depth across shards (0 = 4×workers)")
		maxSessions  = flag.Int("max-sessions", 256, "in-process server: session bound")
		prewarm      = flag.Int("prewarm", 4, "in-process server: engines built at startup")
		metricsz     = flag.Bool("metricsz", false, "scrape /metricsz after the run and fail on a malformed exposition")
		ws           = flag.Bool("ws", false, "stream over /v1/stream WebSockets instead of per-chunk HTTP POSTs")
	)
	flag.Parse()
	if err := run(*addr, *writers, *word, *signals, *chunkMs, *seed, *retries, *maxErrorRate,
		*shards, *workers, *queue, *maxSessions, *prewarm, *metricsz, *ws); err != nil {
		fmt.Fprintln(os.Stderr, "ewload:", err)
		os.Exit(1)
	}
}

func run(addr string, writers int, word string, signals, chunkMs int, seed uint64,
	retries int, maxErrorRate float64, shards, workers, queue, maxSessions, prewarm int,
	metricsz, ws bool) error {
	client := http.DefaultClient
	if addr == "" {
		base, shutdown, err := startInProcess(shards, workers, queue, maxSessions, prewarm)
		if err != nil {
			return err
		}
		defer shutdown()
		addr = base
		fmt.Printf("in-process ewserve on %s\n", addr)
	}

	chunkSamples := 44100 * chunkMs / 1000
	proto := "http"
	if ws {
		proto = "websocket"
	}
	fmt.Printf("synthesizing %d recording(s) of %q, driving %d writers (%d-sample chunks, %s)…\n",
		signals, word, writers, chunkSamples, proto)
	report, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:             addr,
		Writers:             writers,
		Word:                word,
		Signals:             signals,
		ChunkSamples:        chunkSamples,
		Seed:                seed,
		BackpressureRetries: retries,
		Client:              client,
		WS:                  ws,
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report)
	printServerShards(client, addr)
	if metricsz {
		if err := checkMetricsz(client, addr); err != nil {
			return err
		}
	}

	if rate := report.ErrorRate(); rate > maxErrorRate {
		return fmt.Errorf("error rate %.2f%% exceeds threshold %.2f%%", 100*rate, 100*maxErrorRate)
	}
	return nil
}

// printServerShards fetches /statsz and reports the server-side
// per-shard 429 (backpressure) and queue picture, so a load run shows
// which shards ran hot. Best-effort: a server without the endpoint just
// skips the section.
func printServerShards(client *http.Client, addr string) {
	resp, err := client.Get(addr + "/statsz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return
	}
	fmt.Printf("server 429s        %d total", st.Backpressure)
	if len(st.Shards) > 0 {
		fmt.Print(" — per shard:")
		for i, sh := range st.Shards {
			fmt.Printf(" s%d=%d", i, sh.Backpressure)
		}
	}
	fmt.Println()
}

// checkMetricsz scrapes /metricsz after the run and pushes the body
// through the strict exposition parser, so a CI load run also gates the
// metrics surface: a malformed family, a non-cumulative histogram or a
// NaN counter fails the run. Unlike printServerShards this is not
// best-effort — the flag asked for it, so a missing endpoint is an error.
func checkMetricsz(client *http.Client, addr string) error {
	resp, err := client.Get(addr + "/metricsz")
	if err != nil {
		return fmt.Errorf("metricsz scrape: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metricsz scrape: status %d", resp.StatusCode)
	}
	fams, err := expose.Parse(resp.Body)
	if err != nil {
		return fmt.Errorf("metricsz exposition malformed: %w", err)
	}
	series := 0
	for _, f := range fams {
		series += len(f.Samples)
	}
	fmt.Printf("metricsz           %d families, %d series — exposition parses clean\n", len(fams), series)
	for _, name := range []string{"echowrite_chunks_total", "echowrite_detections_total", "echowrite_backpressure_rejects_total"} {
		total, found := 0.0, false
		for _, f := range fams {
			if f.Name != name {
				continue
			}
			found = true
			for _, s := range f.Samples {
				total += s.Value
			}
		}
		if !found {
			return fmt.Errorf("metricsz exposition missing family %s", name)
		}
		fmt.Printf("  %-38s %g\n", name, total)
	}
	return nil
}

// startInProcess boots a loopback sharded ewserve with word candidates
// enabled and returns its base URL plus a shutdown function.
func startInProcess(shards, workers, queue, maxSessions, prewarm int) (string, func(), error) {
	dict, err := lexicon.NewDictionary(stroke.DefaultScheme(), lexicon.DefaultWords())
	if err != nil {
		return "", nil, err
	}
	rec, err := infer.NewRecognizer(dict, infer.DefaultConfusion(), lexicon.DefaultBigram(), infer.DefaultConfig())
	if err != nil {
		return "", nil, err
	}
	mgr, err := serve.NewShardedManager(serve.Config{
		Recognizer:  rec,
		MaxSessions: maxSessions,
		Workers:     workers,
		QueueDepth:  queue,
		Prewarm:     prewarm,
	}, shards)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Shutdown()
		return "", nil, err
	}
	srv := &http.Server{Handler: serve.NewServer(mgr).Handler()}
	// ew:allow goexit: srv.Close in the shutdown closure below stops the
	// serve loop; the analyzer cannot see a stop channel because the
	// http.Server value itself carries the mechanism.
	go srv.Serve(ln)
	shutdown := func() {
		srv.Close()
		mgr.Shutdown()
	}
	// Give the listener a beat; Serve is ready as soon as it runs.
	time.Sleep(10 * time.Millisecond)
	return "http://" + ln.Addr().String(), shutdown, nil
}
