// Package repro's root benchmark harness: one benchmark per paper table
// and figure (plus the ablation suite and pipeline micro-benchmarks).
// Each figure benchmark executes the corresponding experiment end to end
// at a reduced-but-shape-preserving protocol size and reports the
// reproduced headline number as a custom metric.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Paper-scale protocols are driven by cmd/ewbench -full instead.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/stroke"
)

// benchCfg bounds audio-heavy experiments so a full -bench=. pass stays
// tractable while still sweeping every dimension.
func benchCfg() experiments.Config {
	return experiments.Config{Reps: 2, Participants: 2, Seed: 1}
}

// runExperiment executes one registered experiment per benchmark
// iteration and reports a headline metric parsed from the table.
func runExperiment(b *testing.B, name string, cfg experiments.Config, metric func(*experiments.Table) (float64, string)) {
	b.Helper()
	e := experiments.Find(name)
	if e == nil {
		b.Fatalf("experiment %q not registered", name)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			v, unit := metric(tab)
			b.ReportMetric(v, unit)
		}
	}
}

// lastRowPct parses a percentage from the last row at the given column.
func lastRowPct(col int) func(*experiments.Table) (float64, string) {
	return func(t *experiments.Table) (float64, string) {
		row := t.Rows[len(t.Rows)-1]
		v, _ := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
		return v, "pct"
	}
}

// lastRowFloat parses a float from the last row at the given column.
func lastRowFloat(col int, unit string) func(*experiments.Table) (float64, string) {
	return func(t *experiments.Table) (float64, string) {
		row := t.Rows[len(t.Rows)-1]
		v, _ := strconv.ParseFloat(strings.Fields(row[col])[0], 64)
		return v, unit
	}
}

// ---- Preliminary user study (paper §II-A) ----

func BenchmarkFig04Learnability(b *testing.B) {
	runExperiment(b, "fig4", experiments.Quick(), lastRowPct(1))
}

func BenchmarkFig05LearnSpeed(b *testing.B) {
	runExperiment(b, "fig5", experiments.Quick(), lastRowFloat(1, "WPM"))
}

func BenchmarkFig06LearnAccuracy(b *testing.B) {
	runExperiment(b, "fig6", experiments.Quick(), nil)
}

// ---- Signal pipeline artifacts (paper §III) ----

func BenchmarkFig08PipelineStages(b *testing.B) {
	runExperiment(b, "fig8", benchCfg(), nil)
}

func BenchmarkFig09Profiles(b *testing.B) {
	runExperiment(b, "fig9", benchCfg(), nil)
}

func BenchmarkFig10Segmentation(b *testing.B) {
	runExperiment(b, "fig10", experiments.Config{Reps: 1, Participants: 2, Seed: 1},
		func(t *experiments.Table) (float64, string) {
			for _, row := range t.Rows {
				if row[0] == "recall" {
					v, _ := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
					return v, "recall_pct"
				}
			}
			return 0, "recall_pct"
		})
}

// ---- Stroke recognition (paper §V-A) ----

func BenchmarkFig11Devices(b *testing.B) {
	runExperiment(b, "fig11", experiments.Config{Reps: 1, Participants: 2, Seed: 1}, nil)
}

func BenchmarkFig12Environments(b *testing.B) {
	runExperiment(b, "fig12", benchCfg(), lastRowPct(7))
}

func BenchmarkFig13Participants(b *testing.B) {
	runExperiment(b, "fig13", benchCfg(), nil)
}

// ---- Word recognition (paper §V-B) ----

func BenchmarkTable1Words(b *testing.B) {
	runExperiment(b, "table1", experiments.Quick(), nil)
}

func BenchmarkFig14TopK(b *testing.B) {
	runExperiment(b, "fig14", experiments.Config{Reps: 1, Participants: 2, Seed: 1}, lastRowPct(5))
}

func BenchmarkFig15Correction(b *testing.B) {
	runExperiment(b, "fig15", experiments.Config{Reps: 1, Participants: 2, Seed: 1}, lastRowPct(1))
}

// ---- Text-entry speed (paper §V-B3/4) ----

func BenchmarkFig16EntrySpeed(b *testing.B) {
	runExperiment(b, "fig16", experiments.Config{Reps: 1, Participants: 2, Seed: 1},
		lastRowFloat(1, "WPM"))
}

func BenchmarkFig17LPM(b *testing.B) {
	runExperiment(b, "fig17", experiments.Config{Reps: 1, Participants: 2, Seed: 1}, nil)
}

func BenchmarkFig18Training(b *testing.B) {
	runExperiment(b, "fig18", experiments.Config{Reps: 1, Participants: 1, Seed: 1},
		lastRowFloat(1, "WPM_final"))
}

// ---- System overheads (paper §V-C) ----

func BenchmarkFig19StageTime(b *testing.B) {
	runExperiment(b, "fig19", experiments.Config{Reps: 2, Participants: 1, Seed: 1}, nil)
}

func BenchmarkFig20Energy(b *testing.B) {
	runExperiment(b, "fig20", experiments.Quick(),
		func(t *experiments.Table) (float64, string) {
			for _, row := range t.Rows {
				if row[0] == "30" {
					v, _ := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
					return v, "battery_pct"
				}
			}
			return 0, "battery_pct"
		})
}

func BenchmarkFig21CPU(b *testing.B) {
	runExperiment(b, "fig21", experiments.Config{Reps: 2, Participants: 1, Seed: 1}, nil)
}

// ---- Ablations (DESIGN.md §6) ----

func BenchmarkAblationTemplates(b *testing.B) {
	runExperiment(b, "ablation-templates", experiments.Config{Reps: 1, Participants: 2, Seed: 1}, nil)
}

func BenchmarkAblationContour(b *testing.B) {
	runExperiment(b, "ablation-contour", experiments.Config{Reps: 1, Participants: 2, Seed: 1}, nil)
}

func BenchmarkAblationSegmentation(b *testing.B) {
	runExperiment(b, "ablation-segmentation", experiments.Config{Reps: 1, Participants: 1, Seed: 1}, nil)
}

func BenchmarkAblationDTWBand(b *testing.B) {
	runExperiment(b, "ablation-dtw-band", experiments.Config{Reps: 1, Participants: 1, Seed: 1}, nil)
}

func BenchmarkAblationCorrectionScope(b *testing.B) {
	runExperiment(b, "ablation-correction", experiments.Config{Reps: 1, Participants: 1, Seed: 1}, nil)
}

func BenchmarkAblationSTFT(b *testing.B) {
	runExperiment(b, "ablation-stft", experiments.Config{Reps: 1, Participants: 1, Seed: 1}, nil)
}

// ---- Pipeline micro-benchmarks ----

// BenchmarkPipelineRecognizeStroke measures one end-to-end recognition of
// a single-stroke recording (the paper's <200 ms real-time budget).
func BenchmarkPipelineRecognizeStroke(b *testing.B) {
	sys, err := core.New(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	sess := participant.NewSession(participant.SixParticipants()[0], 1)
	rec, err := capture.Perform(sess, stroke.Sequence{stroke.S2},
		acoustic.Mate9(), acoustic.StandardEnvironment(acoustic.MeetingRoom), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RecognizeStrokes(rec.Signal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSceneSynthesis measures the acoustic simulator itself.
func BenchmarkSceneSynthesis(b *testing.B) {
	sess := participant.NewSession(participant.SixParticipants()[0], 1)
	perf, err := sess.Perform(stroke.Sequence{stroke.S3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scene := &acoustic.Scene{
			Device:     acoustic.Mate9(),
			Env:        acoustic.StandardEnvironment(acoustic.LabArea),
			Reflectors: acoustic.HandReflectors(perf.Finger),
			Duration:   perf.Finger.Duration(),
			Seed:       uint64(i),
		}
		if _, err := scene.Synthesize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWordRecognition measures the inference layer alone (Algorithm
// 2 over a 6-stroke observation).
func BenchmarkWordRecognition(b *testing.B) {
	sys, err := core.New(core.Options{
		Pipeline:          core.DefaultOptions().Pipeline,
		Inference:         core.DefaultOptions().Inference,
		AnalyticTemplates: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	seq, err := sys.Dictionary().Scheme().Encode("people")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Recognizer().Recognize(seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDownsample(b *testing.B) {
	runExperiment(b, "ablation-downsample", experiments.Config{Reps: 1, Participants: 1, Seed: 1}, nil)
}

func BenchmarkAblationScoring(b *testing.B) {
	runExperiment(b, "ablation-scoring", experiments.Config{Reps: 1, Participants: 1, Seed: 1}, nil)
}

func BenchmarkAblationDictSize(b *testing.B) {
	runExperiment(b, "ablation-dictsize", experiments.Config{Reps: 1, Participants: 1, Seed: 1}, nil)
}

// ---- Serving micro-benchmarks ----

// BenchmarkStreamFeed1024 measures streaming ingest at a realistic
// microphone delivery size (1024 samples ≈ 23 ms at 44.1 kHz), reusing
// one pooled stream via Reset between iterations.
func BenchmarkStreamFeed1024(b *testing.B) {
	eng, err := pipeline.NewEngine(pipeline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sess := participant.NewSession(participant.SixParticipants()[0], 1)
	rec, err := capture.Perform(sess, stroke.Sequence{stroke.S2},
		acoustic.Mate9(), acoustic.StandardEnvironment(acoustic.MeetingRoom), 1)
	if err != nil {
		b.Fatal(err)
	}
	samples := rec.Signal.Samples
	stream := pipeline.NewStream(eng)
	b.SetBytes(int64(len(samples) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Reset()
		for off := 0; off < len(samples); off += 1024 {
			end := off + 1024
			if end > len(samples) {
				end = len(samples)
			}
			if _, err := stream.Feed(samples[off:end]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := stream.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rec.Signal.Duration()*float64(b.N)/b.Elapsed().Seconds(), "audio_s/s")
}

// BenchmarkEnginePoolCheckout measures the warm checkout/return path a
// session pays on open/close — the cost pooling is meant to amortize
// versus BenchmarkEnginePoolCold's full engine construction.
func BenchmarkEnginePoolCheckout(b *testing.B) {
	pool, err := serve.NewEnginePool(nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := pool.Get()
		if err != nil {
			b.Fatal(err)
		}
		pool.Put(s)
	}
}

// BenchmarkEnginePoolCold measures building a recognizer engine from
// scratch (FFT plan, window tables, analytic templates) — what every
// request would pay without the pool.
func BenchmarkEnginePoolCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.NewEngine(pipeline.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
