// Customscheme: user-defined input schemes — the paper's §VII-C future
// work, implemented.
//
// A custom letter→stroke grouping is validated, its T9-style ambiguity is
// compared against the default scheme's, and the profile-collision checker
// verifies that the gesture set's Doppler templates remain mutually
// distinguishable (the module the paper says a self-adjusting EchoWrite
// would need).
//
//	go run ./examples/customscheme
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dtw"
	"repro/internal/lexicon"
	"repro/internal/stroke"
)

func main() {
	// A plausible alternative: group letters alphabetically instead of by
	// writing shape (worse for memorability, interesting for ambiguity).
	alpha := map[stroke.Stroke]string{
		stroke.S1: "ABCDE",
		stroke.S2: "FGHIJ",
		stroke.S3: "KLMNO",
		stroke.S4: "PQRST",
		stroke.S5: "UVWXY",
		stroke.S6: "Z",
	}
	custom, err := stroke.NewScheme(alpha)
	if err != nil {
		log.Fatal(err)
	}

	// Compare dictionary ambiguity under both schemes.
	words := lexicon.DefaultWords()
	for _, tc := range []struct {
		name   string
		scheme *stroke.Scheme
	}{
		{"default (by writing shape)", stroke.DefaultScheme()},
		{"alphabetical blocks", custom},
	} {
		dict, err := lexicon.NewDictionary(tc.scheme, words)
		if err != nil {
			log.Fatal(err)
		}
		st := dict.Ambiguity()
		fmt.Printf("%-28s sequences=%d  mean collisions=%.2f  max=%d  unique=%.0f%%\n",
			tc.name, st.Sequences, st.MeanCollisions, st.MaxCollisions, 100*st.UniqueFraction)
	}

	// The collision checker: are the six gesture templates mutually
	// distinguishable? (Any redefined gesture set must pass this before
	// being accepted — the auto-check module of §VII-C.)
	ts, err := stroke.NewTemplateSet(stroke.DefaultTemplateConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npairwise DTW distances between stroke templates (higher = safer):")
	minD, minPair := 1e18, ""
	for _, a := range stroke.AllStrokes() {
		for _, b := range stroke.AllStrokes() {
			if b <= a {
				continue
			}
			d, err := dtw.Distance(ts.Profile(a), ts.Profile(b), dtw.Options{Window: 4, Normalize: true})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %v-%v: %6.1f", a, b, d)
			if d < minD {
				minD, minPair = d, fmt.Sprintf("%v-%v", a, b)
			}
		}
		fmt.Println()
	}
	const safetyFloor = 8 // Hz of mean per-frame separation
	fmt.Printf("\ntightest pair: %s at %.1f (floor %d) — ", minPair, minD, safetyFloor)
	if minD >= safetyFloor {
		fmt.Println("gesture set accepted")
	} else {
		fmt.Println("gesture set REJECTED: redefine one of the pair")
	}

	// Custom schemes plug straight into the full system.
	opts := core.DefaultOptions()
	opts.Scheme = custom
	sys, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := sys.Dictionary().Scheme().Encode("hello")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\"hello\" under the custom scheme: %v\n", seq)
}
