// Quickstart: the smallest complete EchoWrite program.
//
// It builds the recognition system (templates are derived from the gesture
// definitions — no training data), synthesizes the audio a phone would
// record while a user air-writes the word "water", and recognizes it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/participant"
)

func main() {
	// 1. Build the system with the paper's default configuration.
	sys, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Simulate a user writing "water" next to a phone in a meeting
	//    room. In a real deployment this signal would come from the
	//    microphone; here the physics simulator stands in for it.
	user := participant.NewSession(participant.SixParticipants()[0], 42)
	rec, err := capture.PerformWord(
		user,
		sys.Dictionary().Scheme(),
		"water",
		acoustic.Mate9(),
		acoustic.StandardEnvironment(acoustic.MeetingRoom),
		42,
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Recognize: audio in, ranked word candidates out.
	result, err := sys.RecognizeWords(rec.Signal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strokes: %v\n", result.Strokes)
	fmt.Printf("top candidate: %q\n", result.Top())
	for i, c := range result.Candidates {
		fmt.Printf("  %d. %s (score %.3g)\n", i+1, c.Word, c.Score)
	}
}
