// Noisyenv: robustness across the paper's three environments.
//
// The same stroke workload is recognized in the meeting room, the lab and
// the resting zone (which includes a bystander pacing 35 cm away). The
// example prints per-environment accuracy — the paper's Fig. 12 claim
// that EchoWrite tolerates ambient noise and irrelevant motion.
//
//	go run ./examples/noisyenv
package main

import (
	"fmt"
	"log"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/participant"
	"repro/internal/stroke"
)

func main() {
	sys, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	envs := []acoustic.EnvironmentKind{
		acoustic.MeetingRoom, acoustic.LabArea, acoustic.RestingZone,
	}
	const repsPerStroke = 4
	user := participant.NewSession(participant.SixParticipants()[1], 11)

	for _, kind := range envs {
		env := acoustic.StandardEnvironment(kind)
		var cm metrics.ConfusionMatrix
		for _, st := range stroke.AllStrokes() {
			for r := 0; r < repsPerStroke; r++ {
				rec, err := capture.Perform(user, stroke.Sequence{st},
					acoustic.Mate9(), env, uint64(int(kind)*1000+int(st)*10+r))
				if err != nil {
					log.Fatal(err)
				}
				out, err := sys.RecognizeStrokes(rec.Signal)
				if err != nil {
					log.Fatal(err)
				}
				if len(out.Detections) == 1 {
					if err := cm.Add(st, out.Detections[0].Stroke); err != nil {
						log.Fatal(err)
					}
				} else if err := cm.AddMiss(st); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("%-13s accuracy %.1f%%", kind, 100*cm.OverallAccuracy())
		if kind == acoustic.RestingZone {
			fmt.Printf("  (with a bystander pacing at 35 cm)")
		}
		fmt.Println()
	}
	fmt.Println("\nper the paper, accuracy should dip only slightly in the resting zone:")
	fmt.Println("the acceleration gate rejects the walker's low-acceleration Doppler trace.")
}
