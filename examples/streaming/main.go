// Streaming: incremental recognition, the way the paper's prototype
// actually runs (§IV-A) — audio arrives chunk by chunk from the
// microphone and strokes are emitted the moment they complete, not when
// the recording ends.
//
// The example simulates writing "morning", feeds the microphone stream to
// the recognizer in 50 ms chunks, and prints each detection with the
// stream time at which it became available.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"repro/internal/acoustic"
	"repro/internal/calibrate"
	"repro/internal/capture"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/stroke"
)

func main() {
	eng, err := calibrate.NewCalibratedEngine(pipeline.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	user := participant.NewSession(participant.SixParticipants()[0], 3)
	rec, err := capture.PerformWord(user, stroke.DefaultScheme(), "morning",
		acoustic.Mate9(), acoustic.StandardEnvironment(acoustic.MeetingRoom), 3)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := stroke.DefaultScheme().Encode("morning")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("writing %q (%v) — %.1f s of audio, fed in 50 ms chunks\n\n",
		"morning", truth, rec.Signal.Duration())

	stream := pipeline.NewStream(eng)
	chunk := 2205 // 50 ms at 44.1 kHz
	var got stroke.Sequence
	for start := 0; start < len(rec.Signal.Samples); start += chunk {
		end := min(start+chunk, len(rec.Signal.Samples))
		dets, err := stream.Feed(rec.Signal.Samples[start:end])
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range dets {
			streamTime := float64(end) / rec.Signal.Rate
			strokeEnd := float64(d.Segment.End) * 1024 / 44100
			fmt.Printf("t=%5.2fs  emitted %v (stroke ended at %.2fs, latency %.2fs)\n",
				streamTime, d.Stroke, strokeEnd, streamTime-strokeEnd)
			got = append(got, d.Stroke)
		}
	}
	tail, err := stream.Flush()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range tail {
		fmt.Printf("flush    emitted %v\n", d.Stroke)
		got = append(got, d.Stroke)
	}
	fmt.Printf("\nrecognized: %v\n", got)
	if got.Equal(truth) {
		fmt.Println("matches the intended sequence — no end-of-recording wait needed")
	}
}
