// Airwriting: an interactive-style text-entry session.
//
// A trained user writes a short message word by word. The example shows
// the candidate list the UI would display for each word, the next-word
// predictions that let frequent continuations be accepted without
// writing, and the session's throughput in WPM/LPM — the workflow behind
// the paper's Figs. 16–18.
//
//	go run ./examples/airwriting
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/participant"
)

func main() {
	sys, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	// A practiced user: proficiency shortens strokes and pauses.
	trained := participant.SixParticipants()[0].WithProficiency(0.9)
	user := participant.NewSession(trained, 7)
	env := acoustic.StandardEnvironment(acoustic.LabArea)

	message := "the people like the water"
	fmt.Printf("entering: %q\n\n", message)

	var speed metrics.Speed
	var entered []string
	for i, word := range strings.Fields(message) {
		// Next-word predictions may let us skip writing entirely.
		if len(entered) > 0 {
			preds := sys.Predict(entered[len(entered)-1])
			if len(preds) > 0 {
				fmt.Printf("predictions after %q: %v\n", entered[len(entered)-1], preds)
			}
		}
		start := time.Now()
		rec, err := capture.PerformWord(user, sys.Dictionary().Scheme(), word,
			acoustic.Mate9(), env, uint64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		res, wr, err := sys.EnterWord(word, rec.Signal)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Predicted:
			fmt.Printf("%q accepted from prediction (no writing needed)\n", word)
		default:
			var shown []string
			for _, c := range wr.Candidates {
				shown = append(shown, c.Word)
			}
			fmt.Printf("%q written as %v → candidates %v, rank %d\n",
				word, wr.Strokes, shown, res.Rank)
		}
		entered = append(entered, res.Chosen)
		// Writing time is simulated time (audio duration), not wall time.
		_ = start
		speed.Add(len(word), rec.Signal.Duration())
	}
	fmt.Printf("\nfinal text: %q\n", strings.Join(entered, " "))
	fmt.Printf("raw writing speed: %.1f WPM / %.1f LPM (motion time only)\n",
		speed.WPM(), speed.LPM())
}
