// Phrasewriting: continuous multi-word entry with automatic word-boundary
// detection — an extension beyond the paper, whose prototype confirms each
// word on screen. A writer naturally dwells longer between words than
// between strokes; clustering the inter-stroke gaps recovers the
// boundaries, so a whole phrase can be written without touching the
// device at all.
//
//	go run ./examples/phrasewriting
package main

import (
	"fmt"
	"log"

	"repro/internal/acoustic"
	"repro/internal/core"
	"repro/internal/participant"
	"repro/internal/stroke"
)

func main() {
	sys, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	user := participant.NewSession(participant.SixParticipants()[0], 19)
	phrase := []string{"the", "water"}

	var seqs []stroke.Sequence
	for _, w := range phrase {
		q, err := sys.Dictionary().Scheme().Encode(w)
		if err != nil {
			log.Fatal(err)
		}
		seqs = append(seqs, q)
	}
	perf, counts, err := user.PerformWords(seqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("writing %v continuously (%v strokes per word, one recording)\n",
		phrase, counts)

	scene := &acoustic.Scene{
		Device:     acoustic.Mate9(),
		Env:        acoustic.StandardEnvironment(acoustic.MeetingRoom),
		Reflectors: acoustic.HandReflectors(perf.Finger),
		Duration:   perf.Finger.Duration(),
		Seed:       19,
	}
	sig, err := scene.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recording: %.1f s of audio\n\n", sig.Duration())

	res, err := sys.RecognizePhrase(sig)
	if err != nil {
		log.Fatal(err)
	}
	for i := range res.Words {
		w := &res.Words[i]
		var names []string
		for _, c := range w.Candidates {
			names = append(names, c.Word)
		}
		fmt.Printf("word %d: %v → candidates %v\n", i+1, w.Strokes, names)
	}
	fmt.Printf("\ndecoded phrase: %q\n", res.Text())
}
